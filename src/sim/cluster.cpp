#include "sim/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <tuple>

namespace resmatch::sim {

ClusterSpec cm5_heterogeneous(MiB second_pool_mib, std::size_t pool_size) {
  return {{32.0, pool_size}, {second_pool_mib, pool_size}};
}

Cluster::Cluster(ClusterSpec spec, AllocationPolicy policy)
    : spec_(std::move(spec)), policy_(policy) {
  // Merge identical pools and sort ascending so eligibility queries are
  // suffix sums. The merge key is the full capacity vector: two pools
  // with the same memory but different CPU/GPU stay distinct. Legacy
  // specs (cpu == gpu == 0 everywhere) merge and order exactly as before.
  std::vector<PoolSpec> sorted = spec_;
  std::sort(sorted.begin(), sorted.end(),
            [](const PoolSpec& a, const PoolSpec& b) {
              return std::tie(a.capacity, a.cpu, a.gpu) <
                     std::tie(b.capacity, b.cpu, b.gpu);
            });
  for (const auto& p : sorted) {
    if (p.count == 0) continue;
    if (p.capacity <= 0.0) {
      throw std::invalid_argument("pool capacity must be positive");
    }
    const ResourceVector cap(p.capacity, p.cpu, p.gpu);
    if (!pools_.empty() && pools_.back().cap == cap) {
      pools_.back().total += p.count;
      pools_.back().free += p.count;
    } else {
      Pool pool;
      pool.capacity = p.capacity;
      pool.total = p.count;
      pool.free = p.count;
      pool.cap = cap;
      pools_.push_back(pool);
    }
    machines_ += p.count;
  }
  if (pools_.empty()) {
    throw std::invalid_argument("cluster must have at least one machine");
  }
}

core::CapacityLadder Cluster::ladder() const {
  std::vector<MiB> rungs;
  rungs.reserve(pools_.size());
  for (const auto& p : pools_) rungs.push_back(p.capacity);
  return core::CapacityLadder(std::move(rungs));
}

core::CapacityLadder Cluster::ladder_for_dim(std::size_t dim) const {
  std::vector<MiB> rungs;
  rungs.reserve(pools_.size());
  for (const auto& p : pools_) {
    // Memory is always provisioned (constructor rejects capacity <= 0);
    // other dimensions only contribute rungs from pools that have them.
    if (dim == kDimMem || p.cap[dim] > 0.0) rungs.push_back(p.cap[dim]);
  }
  return core::CapacityLadder(std::move(rungs));
}

std::size_t Cluster::eligible_free(MiB min_capacity) const {
  std::size_t count = 0;
  for (const auto& p : pools_) {
    if (p.capacity >= min_capacity) count += p.free;
  }
  return count;
}

std::size_t Cluster::eligible_total(MiB min_capacity) const {
  std::size_t count = 0;
  for (const auto& p : pools_) {
    if (p.capacity >= min_capacity) count += p.total;
  }
  return count;
}

std::size_t Cluster::eligible_free_vec(const ResourceVector& req,
                                       std::size_t dims) const {
  std::size_t count = 0;
  for (const auto& p : pools_) {
    if (p.cap.covers(req, dims)) count += p.free;
  }
  return count;
}

std::size_t Cluster::eligible_total_vec(const ResourceVector& req,
                                        std::size_t dims) const {
  std::size_t count = 0;
  for (const auto& p : pools_) {
    if (p.cap.covers(req, dims)) count += p.total;
  }
  return count;
}

std::size_t Cluster::machine_count() const { return machines_; }

double Cluster::busy_fraction() const noexcept {
  if (machines_ == 0) return busy_ > 0 ? 1.0 : 0.0;
  // Draining machines can push busy above the committed machine count
  // for a while; clamp — "fully busy" is the honest reading.
  return std::min(1.0, static_cast<double>(busy_) /
                           static_cast<double>(machines_));
}

Cluster::Pool* Cluster::find_pool(MiB capacity) {
  for (auto& pool : pools_) {
    if (std::fabs(pool.capacity - capacity) < 1e-9) return &pool;
  }
  return nullptr;
}

void Cluster::add_machines(MiB capacity, std::size_t count) {
  Pool* pool = find_pool(capacity);
  if (!pool) {
    throw std::invalid_argument(
        "add_machines: unknown capacity class (the ladder is fixed)");
  }
  pool->total += count;
  pool->free += count;
  machines_ += count;
  log_delta(static_cast<std::size_t>(pool - pools_.data()), 0,
            static_cast<std::int64_t>(count));
}

void Cluster::remove_machines(MiB capacity, std::size_t count) {
  Pool* pool = find_pool(capacity);
  if (!pool) {
    throw std::invalid_argument("remove_machines: unknown capacity class");
  }
  const std::size_t removed = std::min(count, pool->total);
  pool->total -= removed;
  machines_ -= removed;
  const std::size_t from_free = std::min(pool->free, removed);
  pool->free -= from_free;
  // The rest are busy: they leave as their jobs finish.
  pool->draining += removed - from_free;
  // present = total + draining: the busy remainder cancels out, so only
  // the machines that left immediately change what is physically here.
  log_delta(static_cast<std::size_t>(pool - pools_.data()), 0,
            -static_cast<std::int64_t>(from_free));
}

std::size_t Cluster::draining_count() const noexcept {
  std::size_t total = 0;
  for (const auto& pool : pools_) total += pool.draining;
  return total;
}

std::vector<Cluster::PoolSnapshot> Cluster::snapshot() const {
  std::vector<PoolSnapshot> out;
  out.reserve(pools_.size());
  for (const auto& pool : pools_) {
    PoolSnapshot snap;
    snap.capacity = pool.capacity;
    snap.total = pool.total;
    snap.draining = pool.draining;
    // Busy = owned-but-not-free plus drained machines still finishing;
    // the incremental counter must always agree with that derivation.
    assert(pool.busy == pool.total - pool.free + pool.draining);
    snap.busy = pool.busy;
    out.push_back(snap);
  }
  return out;
}

std::optional<Allocation> Cluster::allocate(std::uint32_t nodes,
                                            MiB min_capacity) {
  if (nodes == 0) return std::nullopt;
  if (eligible_free(min_capacity) < nodes) return std::nullopt;

  Allocation out;
  out.nodes = nodes;
  out.min_capacity = 0.0;
  std::size_t remaining = nodes;

  auto take_from = [&](std::size_t pool_index) {
    Pool& p = pools_[pool_index];
    if (p.capacity < min_capacity || p.free == 0) return;
    const std::size_t take = std::min(p.free, remaining);
    if (take == 0) return;
    p.free -= take;
    p.busy += take;
    remaining -= take;
    log_delta(pool_index, static_cast<std::int64_t>(take), 0);
    out.pool_counts.emplace_back(pool_index, take);
    out.min_capacity = out.min_capacity == 0.0
                           ? p.capacity
                           : std::min(out.min_capacity, p.capacity);
  };

  if (policy_ == AllocationPolicy::kBestFit) {
    for (std::size_t i = 0; i < pools_.size() && remaining > 0; ++i) {
      take_from(i);
    }
  } else {
    for (std::size_t i = pools_.size(); i-- > 0 && remaining > 0;) {
      take_from(i);
    }
  }
  assert(remaining == 0);
  busy_ += nodes;
  return out;
}

std::optional<Allocation> Cluster::allocate_vec(std::uint32_t nodes,
                                                const ResourceVector& req,
                                                std::size_t dims) {
  if (nodes == 0) return std::nullopt;
  if (eligible_free_vec(req, dims) < nodes) return std::nullopt;

  Allocation out;
  out.nodes = nodes;
  out.min_capacity = 0.0;
  std::size_t remaining = nodes;

  auto take_from = [&](std::size_t pool_index) {
    Pool& p = pools_[pool_index];
    if (!p.cap.covers(req, dims) || p.free == 0) return;
    const std::size_t take = std::min(p.free, remaining);
    if (take == 0) return;
    p.free -= take;
    p.busy += take;
    remaining -= take;
    log_delta(pool_index, static_cast<std::int64_t>(take), 0);
    out.pool_counts.emplace_back(pool_index, take);
    out.min_capacity = out.min_capacity == 0.0
                           ? p.capacity
                           : std::min(out.min_capacity, p.capacity);
  };

  if (policy_ == AllocationPolicy::kBestFit) {
    for (std::size_t i = 0; i < pools_.size() && remaining > 0; ++i) {
      take_from(i);
    }
  } else {
    for (std::size_t i = pools_.size(); i-- > 0 && remaining > 0;) {
      take_from(i);
    }
  }
  assert(remaining == 0);
  busy_ += nodes;
  return out;
}

void Cluster::release(const Allocation& allocation) {
  for (const auto& [pool_index, count] : allocation.pool_counts) {
    assert(pool_index < pools_.size());
    Pool& p = pools_[pool_index];
    // Machines owed to a removal depart instead of becoming free.
    const std::size_t departing = std::min(p.draining, count);
    p.draining -= departing;
    p.free += count - departing;
    assert(p.busy >= count);
    p.busy -= count;
    assert(p.free <= p.total);
    log_delta(pool_index, -static_cast<std::int64_t>(count),
              -static_cast<std::int64_t>(departing));
  }
  assert(busy_ >= allocation.nodes);
  busy_ -= allocation.nodes;
}

}  // namespace resmatch::sim
