#include "sim/mr_simulator.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <optional>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/event_queue.hpp"
#include "sim/timeseries.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"
#include "trace/footprint.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace resmatch::sim {

namespace {

enum class EventKind { kArrival, kJobEnd, kAvailability };

struct EventPayload {
  EventKind kind = EventKind::kArrival;
  std::size_t index = 0;
};

enum class Outcome { kSuccess, kResourceFailure, kIntrinsicFailure };

struct MrRunningRecord {
  std::size_t trace_index = 0;
  Allocation allocation;
  ResourceVector granted{};
  Seconds start = 0.0;
  Seconds expected_end = 0.0;
  Outcome outcome = Outcome::kSuccess;
  /// Resource failure only: the dimension whose crossing fired first.
  std::size_t culprit = 0;
  /// Resource failure only: timed by a footprint crossing, not a draw.
  bool midjob = false;
  bool active = false;
};

struct PoolIntegral {
  MiB capacity = 0.0;
  double busy_node_seconds = 0.0;
  double capacity_node_seconds = 0.0;
};

}  // namespace

MrSimulationResult simulate_mr(const trace::ScenarioWorkload& scenario,
                               const ClusterSpec& cluster_spec,
                               core::VectorEstimator& estimator,
                               sched::SchedulingPolicy& policy,
                               const MrSimulationConfig& config) {
  const auto& jobs = scenario.base.jobs;
  const std::size_t dims = config.dims;
  if (dims < 1 || dims > kMaxResourceDims || dims > scenario.dims) {
    throw std::invalid_argument("simulate_mr: dims out of range");
  }
  if (scenario.mr.size() != jobs.size()) {
    throw std::invalid_argument(
        "simulate_mr: scenario.mr must parallel scenario.base.jobs");
  }
  if (estimator.dims() != dims) {
    throw std::invalid_argument("simulate_mr: estimator dims mismatch");
  }
  if (config.base.baseline_loop || config.base.heap_queue ||
      config.base.shards != 0 || config.base.runtime_predictor != nullptr) {
    throw std::invalid_argument(
        "simulate_mr: baseline/heap/shards/predictor not supported");
  }

  Cluster cluster(cluster_spec, config.base.allocation);
  for (std::size_t d = 0; d < dims; ++d) {
    estimator.set_ladder(d, cluster.ladder_for_dim(d));
  }
  util::Rng rng(config.base.seed);

  MrSimulationResult mr_result;
  SimulationResult& result = mr_result.base;
  result.estimator_name = estimator.estimator_name();
  result.policy_name = policy.name();
  result.submitted = jobs.size();
  result.offered_load = scenario.base.offered_load(cluster.machine_count());

  EventQueue<EventPayload> events;
  events.reserve(jobs.size() + config.base.availability.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    events.push(jobs[i].submit, {EventKind::kArrival, i});
  }
  std::size_t pending_capacity_adds = 0;
  for (std::size_t i = 0; i < config.base.availability.size(); ++i) {
    events.push(config.base.availability[i].time,
                {EventKind::kAvailability, i});
    if (config.base.availability[i].delta > 0) ++pending_capacity_adds;
  }

  std::deque<sched::QueuedJob> queue;
  std::vector<MrRunningRecord> running;
  std::vector<std::size_t> free_slots;
  std::vector<std::uint32_t> attempts(jobs.size(), 0);
  // The full preview vector behind each queue entry's scalar
  // effective_request (policies order by memory; eligibility checks use
  // the whole vector). Indexed by trace position — a job has at most one
  // queue entry at a time.
  std::vector<ResourceVector> preview_vec(jobs.size());

  std::vector<std::size_t> index_slots;
  std::vector<sched::RunningJobInfo> index_infos;
  std::size_t active_jobs = 0;
  auto index_insert = [&](std::size_t slot, sched::RunningJobInfo info) {
    const auto it =
        std::lower_bound(index_slots.begin(), index_slots.end(), slot);
    const auto pos = it - index_slots.begin();
    index_slots.insert(it, slot);
    index_infos.insert(index_infos.begin() + pos, info);
  };
  auto index_erase = [&](std::size_t slot) {
    const auto it =
        std::lower_bound(index_slots.begin(), index_slots.end(), slot);
    assert(it != index_slots.end() && *it == slot);
    const auto pos = it - index_slots.begin();
    index_slots.erase(it);
    index_infos.erase(index_infos.begin() + pos);
  };

  double productive_node_seconds = 0.0;
  double wasted_node_seconds = 0.0;
  double kill_progress_sum = 0.0;
  stats::Summary wait_stats, slowdown_stats, bounded_stats;
  stats::PercentileTracker slowdown_pct;
  Seconds first_submit = jobs.empty() ? 0.0 : jobs.front().submit;
  Seconds last_event = first_submit;
  double capacity_integral = 0.0;
  Seconds capacity_since = first_submit;

  std::vector<PoolIntegral> pool_integrals;
  for (const auto& snap : cluster.snapshot()) {
    pool_integrals.push_back({snap.capacity, 0.0, 0.0});
  }
  Seconds pool_since = first_submit;
  auto integrate_pools = [&](Seconds now) {
    const Seconds dt = now - pool_since;
    if (dt <= 0.0) return;
    const std::size_t n = std::min(cluster.pool_count(), pool_integrals.size());
    for (std::size_t i = 0; i < n; ++i) {
      const auto counters = cluster.pool_counters(i);
      pool_integrals[i].busy_node_seconds +=
          static_cast<double>(counters.busy) * dt;
      pool_integrals[i].capacity_node_seconds +=
          static_cast<double>(counters.present) * dt;
    }
    pool_since = now;
  };

  // Per-dimension rounding of the RAW request, for lowered/benefiting
  // accounting. Dimension 0's ladder is exactly Cluster::ladder().
  std::array<core::CapacityLadder, kMaxResourceDims> ladders;
  for (std::size_t d = 0; d < dims; ++d) {
    ladders[d] = cluster.ladder_for_dim(d);
  }
  auto round_requested = [&](std::size_t trace_index) {
    const ResourceVector& req = scenario.mr[trace_index].requested;
    ResourceVector out;
    for (std::size_t d = 0; d < dims; ++d) {
      out[d] = ladders[d].round_up(req[d]);
    }
    return out;
  };

  obs::Counter* events_counter = nullptr;
  obs::Histogram* schedule_hist = nullptr;
  if (config.base.metrics) {
    events_counter = &config.base.metrics->counter(
        "resmatch_sim_events_total", "Discrete events processed");
    schedule_hist = &config.base.metrics->histogram(
        "resmatch_sim_schedule_seconds",
        "Wall time of one scheduler decision pass", {1e-7, 2.0, 22});
  }
  std::uint64_t events_processed = 0;
  const auto wall_start = std::chrono::steady_clock::now();

  auto system_state = [&]() {
    core::SystemState state;
    state.now = last_event;
    state.busy_fraction = cluster.busy_fraction();
    state.queue_length = queue.size();
    return state;
  };

  auto stamp_preview_memo = [&](sched::QueuedJob& q,
                                const trace::JobRecord& record) {
    if (const auto epoch = estimator.preview_epoch(
            record, scenario.mr[q.trace_index].requested)) {
      q.preview_epoch = *epoch;
      q.preview_memoized = true;
    } else {
      q.preview_memoized = false;
    }
  };

  auto refresh_preview = [&](sched::QueuedJob& q) {
    const trace::JobRecord& record = jobs[q.trace_index];
    preview_vec[q.trace_index] = estimator.preview(
        record, scenario.mr[q.trace_index].requested, system_state());
    q.effective_request = preview_vec[q.trace_index][kDimMem];
    stamp_preview_memo(q, record);
  };

  auto make_queued = [&](std::size_t trace_index) {
    const trace::JobRecord& record = jobs[trace_index];
    sched::QueuedJob q;
    q.trace_index = trace_index;
    q.id = record.id;
    q.nodes = record.nodes;
    preview_vec[trace_index] = estimator.preview(
        record, scenario.mr[trace_index].requested, system_state());
    q.effective_request = preview_vec[trace_index][kDimMem];
    stamp_preview_memo(q, record);
    q.enqueue_time = last_event;
    q.requested_time = record.requested_time > 0.0 ? record.requested_time
                                                   : record.runtime;
    q.attempts = attempts[trace_index];
    return q;
  };

  auto start_job = [&](const sched::QueuedJob& q, Seconds now) -> bool {
    const trace::JobRecord& record = jobs[q.trace_index];
    const trace::MrJobInfo& info = scenario.mr[q.trace_index];
    const ResourceVector grant =
        estimator.estimate(record, info.requested, system_state());
    auto allocation = cluster.allocate_vec(q.nodes, grant, dims);
    if (!allocation) {
      estimator.cancel(record, info.requested, grant);
      return false;
    }

    MrRunningRecord run;
    run.trace_index = q.trace_index;
    run.allocation = *allocation;
    run.granted = grant;
    run.start = now;
    run.expected_end = now + q.requested_time;
    run.active = true;

    // Decide the attempt's fate up front (the trace knows the truth).
    // Order matters for RNG-draw equivalence with the scalar engine:
    // intrinsic failures draw first, flat-profile resource kills draw
    // exactly once no matter how many dimensions overrun, and footprint
    // crossings draw nothing (their time is deterministic).
    Seconds end;
    if (record.status == trace::JobStatus::kFailed) {
      run.outcome = Outcome::kIntrinsicFailure;
      end = now + rng.uniform() * record.runtime;
    } else {
      std::optional<std::size_t> first_overrun;
      for (std::size_t d = 0; d < dims; ++d) {
        if (info.used_peak[d] > grant[d] + 1e-9) {
          first_overrun = d;
          break;
        }
      }
      if (!first_overrun) {
        run.outcome = Outcome::kSuccess;
        end = now + record.runtime;
      } else if (info.profile.shape == trace::FootprintShape::kFlat) {
        run.outcome = Outcome::kResourceFailure;
        run.culprit = *first_overrun;
        end = now + rng.uniform() * record.runtime;
      } else {
        // The profile crosses each overrun dimension's grant at a known
        // time; the earliest crossing kills the job (ties: lowest dim).
        run.outcome = Outcome::kResourceFailure;
        run.midjob = true;
        Seconds earliest = record.runtime;
        std::size_t culprit = *first_overrun;
        for (std::size_t d = *first_overrun; d < dims; ++d) {
          if (!(info.used_peak[d] > grant[d] + 1e-9)) continue;
          const auto crossing = info.profile.first_crossing(
              grant[d], record.runtime, info.used_peak[d]);
          assert(crossing.has_value());
          if (crossing && *crossing < earliest) {
            earliest = *crossing;
            culprit = d;
          }
        }
        run.culprit = culprit;
        end = now + earliest;
      }
    }

    ++result.attempts;
    ++attempts[q.trace_index];
    const ResourceVector rounded = round_requested(q.trace_index);
    for (std::size_t d = 0; d < dims; ++d) {
      if (grant[d] + 1e-9 < rounded[d]) {
        ++result.lowered_starts;
        break;
      }
    }

    const sched::RunningJobInfo run_info{run.expected_end, record.nodes,
                                         run.granted[kDimMem]};
    std::size_t slot;
    if (!free_slots.empty()) {
      slot = free_slots.back();
      free_slots.pop_back();
      running[slot] = std::move(run);
    } else {
      slot = running.size();
      running.push_back(std::move(run));
    }
    ++active_jobs;
    index_insert(slot, run_info);
    events.push(end, {EventKind::kJobEnd, slot});
    return true;
  };

  auto schedule = [&](Seconds now) {
    int failed_starts = 0;
    for (;;) {
      if (!queue.empty()) {
        sched::QueuedJob& head = queue.front();
        const auto& head_record = jobs[head.trace_index];
        bool stale = true;
        if (head.preview_memoized) {
          const auto epoch = estimator.preview_epoch(
              head_record, scenario.mr[head.trace_index].requested);
          stale = !(epoch && *epoch == head.preview_epoch);
        }
        if (stale) refresh_preview(head);
        if (pending_capacity_adds == 0 &&
            cluster.eligible_total_vec(preview_vec[head.trace_index], dims) <
                head.nodes) {
          ++result.dropped_unschedulable;
          queue.pop_front();
          continue;
        }
      }
      const auto pick = policy.pick_next(queue, cluster, index_infos, now);
      if (!pick) return;
      assert(*pick < queue.size());
      if (!start_job(queue[*pick], now)) {
        refresh_preview(queue[*pick]);
        if (++failed_starts > 64) return;
        continue;
      }
      if (*pick == 0) {
        queue.pop_front();
      } else {
        queue.erase(queue.begin() + static_cast<long>(*pick));
      }
    }
  };

  auto enqueue = [&](std::size_t trace_index, bool retry) {
    sched::QueuedJob q = make_queued(trace_index);
    if (pending_capacity_adds == 0 &&
        cluster.eligible_total_vec(preview_vec[trace_index], dims) < q.nodes) {
      ++result.dropped_unschedulable;
      RM_LOG(kDebug) << "dropping unschedulable job " << q.id;
      return;
    }
    if (retry) {
      queue.push_front(std::move(q));
    } else {
      queue.push_back(std::move(q));
    }
  };

  while (!events.empty()) {
    const auto event = events.pop();
    ++events_processed;
    last_event = std::max(last_event, event.time);
    const Seconds now = event.time;
    integrate_pools(now);

    switch (event.payload.kind) {
      case EventKind::kArrival: {
        enqueue(event.payload.index, /*retry=*/false);
        break;
      }
      case EventKind::kAvailability: {
        const AvailabilityEvent& change =
            config.base.availability[event.payload.index];
        const Seconds effective = std::max(now, capacity_since);
        capacity_integral += static_cast<double>(cluster.machine_count()) *
                             (effective - capacity_since);
        capacity_since = effective;
        if (change.delta >= 0) {
          cluster.add_machines(change.capacity,
                               static_cast<std::size_t>(change.delta));
          if (pending_capacity_adds > 0) --pending_capacity_adds;
        } else {
          cluster.remove_machines(change.capacity,
                                  static_cast<std::size_t>(-change.delta));
        }
        break;
      }
      case EventKind::kJobEnd: {
        MrRunningRecord& run = running[event.payload.index];
        assert(run.active);
        run.active = false;
        cluster.release(run.allocation);
        free_slots.push_back(event.payload.index);
        --active_jobs;
        index_erase(event.payload.index);
        const trace::JobRecord& record = jobs[run.trace_index];
        const trace::MrJobInfo& info = scenario.mr[run.trace_index];
        const Seconds elapsed = now - run.start;

        core::VectorFeedback fb;
        fb.success = run.outcome == Outcome::kSuccess;
        fb.granted = run.granted;
        if (config.base.explicit_feedback) {
          fb.explicit_feedback = true;
          // What the usage monitor saw at the moment the attempt ended:
          // the full peak on success (and always under flat profiles),
          // but only the footprint-so-far on an early kill — which is
          // exactly why early and late kills teach differently.
          for (std::size_t d = 0; d < dims; ++d) {
            fb.used[d] =
                info.profile.usage_at(elapsed, record.runtime,
                                      info.used_peak[d]);
          }
          if (run.outcome == Outcome::kResourceFailure) {
            fb.dim_failure[run.culprit] = true;
          }
        }
        estimator.feedback(record, info.requested, fb);

        switch (run.outcome) {
          case Outcome::kSuccess: {
            ++result.completed;
            productive_node_seconds += record.work();
            result.granted_mib_nodes +=
                run.granted[kDimMem] * static_cast<double>(record.nodes);
            result.used_mib_nodes +=
                record.used_mem_mib * static_cast<double>(record.nodes);
            const Seconds response = now - record.submit;
            const Seconds wait = response - record.runtime;
            wait_stats.add(wait);
            const double slowdown = response / record.runtime;
            slowdown_stats.add(slowdown);
            slowdown_pct.add(slowdown);
            bounded_stats.add(std::max(
                1.0,
                response / std::max(record.runtime,
                                    config.base.bounded_slowdown_tau)));
            if (cluster.eligible_total_vec(run.granted, dims) >
                cluster.eligible_total_vec(round_requested(run.trace_index),
                                           dims)) {
              ++result.benefiting_jobs;
              result.benefiting_nodes += record.nodes;
            }
            break;
          }
          case Outcome::kResourceFailure: {
            ++result.resource_failures;
            ++mr_result.kills_by_dim[run.culprit];
            if (run.midjob) ++mr_result.midjob_kills;
            kill_progress_sum +=
                record.runtime > 0.0 ? elapsed / record.runtime : 0.0;
            wasted_node_seconds +=
                static_cast<double>(record.nodes) * elapsed;
            if (attempts[run.trace_index] >=
                config.base.max_attempts_per_job) {
              ++result.dropped_attempt_cap;
              RM_LOG(kWarn) << "job " << record.id
                            << " dropped after attempt cap";
            } else {
              enqueue(run.trace_index, /*retry=*/true);
            }
            break;
          }
          case Outcome::kIntrinsicFailure: {
            ++result.intrinsic_failed;
            wasted_node_seconds +=
                static_cast<double>(record.nodes) * elapsed;
            break;
          }
        }
        break;
      }
    }

    if (!events.empty() && events.top().time == now) continue;
    if (schedule_hist != nullptr) {
      obs::ScopedSpan pass("sim.schedule", schedule_hist);
      schedule(now);
    } else {
      schedule(now);
    }
    if (config.base.timeseries) {
      config.base.timeseries->observe(now, cluster.busy_fraction(),
                                      queue.size(), active_jobs);
    }
  }

  result.dropped_unschedulable += queue.size();

  result.makespan = last_event - first_submit;
  integrate_pools(last_event);
  for (const auto& pool : pool_integrals) {
    result.pool_utilization.push_back(
        {pool.capacity,
         pool.capacity_node_seconds > 0.0
             ? pool.busy_node_seconds / pool.capacity_node_seconds
             : 0.0});
  }
  capacity_integral += static_cast<double>(cluster.machine_count()) *
                       (last_event - capacity_since);
  if (capacity_integral > 0.0) {
    result.utilization = productive_node_seconds / capacity_integral;
    result.wasted_fraction = wasted_node_seconds / capacity_integral;
  }
  result.mean_wait = wait_stats.mean();
  result.mean_slowdown = slowdown_stats.mean();
  result.mean_bounded_slowdown = bounded_stats.mean();
  result.p95_slowdown = slowdown_pct.percentile(95.0);
  if (result.makespan > 0.0) {
    result.throughput_per_hour =
        static_cast<double>(result.completed) / (result.makespan / 3600.0);
  }
  if (result.resource_failures > 0) {
    mr_result.mean_kill_progress =
        kill_progress_sum / static_cast<double>(result.resource_failures);
  }
  if (config.base.metrics) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (events_counter != nullptr) {
      events_counter->inc(events_processed);
    }
    config.base.metrics
        ->gauge("resmatch_sim_wall_seconds", "Wall time of the last run")
        .set(wall);
    config.base.metrics
        ->gauge("resmatch_sim_events_per_sec",
                "Event throughput of the last run")
        .set(wall > 0.0 ? static_cast<double>(events_processed) / wall : 0.0);
    config.base.metrics
        ->counter("resmatch_sim_kill_mem_total",
                  "Resource kills attributed to the memory dimension")
        .inc(mr_result.kills_by_dim[kDimMem]);
    config.base.metrics
        ->counter("resmatch_sim_kill_cpu_total",
                  "Resource kills attributed to the CPU dimension")
        .inc(mr_result.kills_by_dim[kDimCpu]);
    config.base.metrics
        ->counter("resmatch_sim_kill_gpu_total",
                  "Resource kills attributed to the GPU dimension")
        .inc(mr_result.kills_by_dim[kDimGpu]);
    config.base.metrics
        ->counter("resmatch_sim_midjob_kills_total",
                  "Resource kills timed by a footprint crossing")
        .inc(mr_result.midjob_kills);
  }
  return mr_result;
}

}  // namespace resmatch::sim
