#include "sim/metrics.hpp"

#include "util/strings.hpp"

namespace resmatch::sim {

std::string summarize(const SimulationResult& r) {
  return util::format(
      "%s/%s: load=%.2f util=%.3f slowdown=%.2f (bounded %.2f) wait=%.0fs "
      "completed=%zu/%zu lowered=%.1f%% res-fail=%.3f%% benefit-nodes=%zu",
      r.estimator_name.c_str(), r.policy_name.c_str(), r.offered_load,
      r.utilization, r.mean_slowdown, r.mean_bounded_slowdown, r.mean_wait,
      r.completed, r.submitted, 100.0 * r.lowered_fraction(),
      100.0 * r.resource_failure_fraction(), r.benefiting_nodes);
}

}  // namespace resmatch::sim
