// Simulation outcome metrics, following Feitelson's definitions (the
// paper cites [5] for utilization and slowdown).
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace resmatch::sim {

struct SimulationResult {
  std::string estimator_name;
  std::string policy_name;

  // --- population --------------------------------------------------------
  std::size_t submitted = 0;
  std::size_t completed = 0;            ///< ran to successful completion
  std::size_t intrinsic_failed = 0;     ///< failed for non-resource reasons
  std::size_t dropped_unschedulable = 0;  ///< could never fit the cluster
  std::size_t dropped_attempt_cap = 0;  ///< exceeded the retry safety valve

  // --- execution attempts -------------------------------------------------
  std::size_t attempts = 0;           ///< job starts (including failed runs)
  std::size_t resource_failures = 0;  ///< starts killed by under-provision
  std::size_t lowered_starts = 0;     ///< starts granted less than requested

  // --- time and work -------------------------------------------------------
  Seconds makespan = 0.0;           ///< first submit to last event
  double offered_load = 0.0;        ///< demanded / available node-seconds
  double utilization = 0.0;         ///< productive node-seconds fraction
  double wasted_fraction = 0.0;     ///< failed-run node-seconds fraction

  // --- responsiveness (over completed jobs) --------------------------------
  double mean_wait = 0.0;
  double mean_slowdown = 0.0;           ///< (wait + run) / run
  double mean_bounded_slowdown = 0.0;   ///< runtime floored at tau
  double p95_slowdown = 0.0;
  double throughput_per_hour = 0.0;

  // --- estimation effectiveness --------------------------------------------
  /// Jobs whose grant opened machines their raw request could not use
  /// (the paper's §3.2 "benefiting jobs"), and their total node count.
  std::size_t benefiting_jobs = 0;
  std::size_t benefiting_nodes = 0;

  /// Memory the estimator committed vs. what the job touched, both in
  /// MiB weighted by node count, summed over successful completions
  /// (failed runs would conflate under-provision kills with headroom).
  /// Their ratio is the overprovisioning factor the paper's Figure 1
  /// measures for raw requests — 1.0 is a perfect oracle.
  double granted_mib_nodes = 0.0;
  double used_mib_nodes = 0.0;

  /// Per-capacity-class occupancy: what fraction of each pool's
  /// node-seconds were busy. Explains WHERE utilization was won or lost
  /// (the Figure 5 mechanism: without estimation the small pool idles).
  struct PoolUtilization {
    MiB capacity = 0.0;
    double busy_fraction = 0.0;
  };
  std::vector<PoolUtilization> pool_utilization;

  [[nodiscard]] double lowered_fraction() const noexcept {
    return attempts == 0
               ? 0.0
               : static_cast<double>(lowered_starts) /
                     static_cast<double>(attempts);
  }
  [[nodiscard]] double resource_failure_fraction() const noexcept {
    return attempts == 0
               ? 0.0
               : static_cast<double>(resource_failures) /
                     static_cast<double>(attempts);
  }
  /// Mean granted/used memory over successful completions (node-weighted).
  /// 0 when nothing completed or usage was unrecorded.
  [[nodiscard]] double overprovision_factor() const noexcept {
    return used_mib_nodes <= 0.0 ? 0.0
                                 : granted_mib_nodes / used_mib_nodes;
  }
};

/// One-paragraph textual summary for logs.
[[nodiscard]] std::string summarize(const SimulationResult& result);

}  // namespace resmatch::sim
