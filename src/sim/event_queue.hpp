// Deterministic discrete-event queue.
//
// A binary min-heap ordered by (time, insertion sequence): events at equal
// times pop in insertion order, which makes whole simulations bit-for-bit
// reproducible across runs and platforms.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "util/types.hpp"

namespace resmatch::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    Seconds time = 0.0;
    std::uint64_t seq = 0;
    Payload payload{};
  };

  void push(Seconds time, Payload payload) {
    heap_.push(Event{time, next_seq_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] const Event& top() const { return heap_.top(); }

  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace resmatch::sim
