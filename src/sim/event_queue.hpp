// Deterministic discrete-event queue.
//
// A binary min-heap ordered by (time, insertion sequence): events at equal
// times pop in insertion order, which makes whole simulations bit-for-bit
// reproducible across runs and platforms.
//
// The heap is an explicit vector driven by std::push_heap/std::pop_heap
// rather than a std::priority_queue: priority_queue::top() returns a
// const reference, which forced pop() to deep-copy the top event — a
// per-event payload copy on the simulator's hottest path. pop_heap moves
// the top element to the back of the vector, where pop() can move the
// whole event out. This also admits move-only payloads.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace resmatch::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    Seconds time = 0.0;
    std::uint64_t seq = 0;
    Payload payload{};
  };

  void push(Seconds time, Payload payload) {
    heap_.push_back(Event{time, next_seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] const Event& top() const { return heap_.front(); }

  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event e = std::move(heap_.back());
    heap_.pop_back();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;  // max-heap under Later = min-(time, seq) first
  std::uint64_t next_seq_ = 0;
};

}  // namespace resmatch::sim
