// Deterministic discrete-event queue.
//
// A binary min-heap ordered by (time, insertion sequence): events at equal
// times pop in insertion order, which makes whole simulations bit-for-bit
// reproducible across runs and platforms.
//
// The heap is an explicit vector driven by std::push_heap/std::pop_heap
// rather than a std::priority_queue: priority_queue::top() returns a
// const reference, which forced pop() to deep-copy the top event — a
// per-event payload copy on the simulator's hottest path. pop_heap moves
// the top element to the back of the vector, where pop() can move the
// whole event out. This also admits move-only payloads.
//
// Growth policy for cluster-scale runs (10M+ events): callers that know
// the event population up front should reserve() it — the doubling growth
// of an unreserved vector re-copies the whole heap ~24 times on the way
// to 10M entries. Conversely, a drained queue releases its backing store
// once occupancy falls far below capacity, so a simulation whose pending
// set shrinks from millions (all arrivals) to thousands (active jobs)
// does not pin the peak footprint for the rest of the run.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace resmatch::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    Seconds time = 0.0;
    std::uint64_t seq = 0;
    Payload payload{};
  };

  void push(Seconds time, Payload payload) {
    assert(next_seq_ != ~std::uint64_t{0} && "event seq space exhausted");
    heap_.push_back(Event{time, next_seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  [[nodiscard]] const Event& top() const {
    // Guards the classic top()-after-final-pop() bug: on an empty queue
    // front() is UB and size()-derived indices underflow.
    assert(!heap_.empty() && "top() on empty EventQueue");
    return heap_.front();
  }

  Event pop() {
    assert(!heap_.empty() && "pop() on empty EventQueue");
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event e = std::move(heap_.back());
    heap_.pop_back();
    maybe_shrink();
    return e;
  }

  /// Pre-size the heap for a known event population (one allocation
  /// instead of log2(n) doubling re-copies).
  void reserve(std::size_t n) { heap_.reserve(n); }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_.capacity();
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Release the backing store when occupancy drops below 1/8 of a large
  /// capacity. Keeping 2x headroom and only shrinking past the 1/8 mark
  /// means repeated push/pop around a threshold can never thrash
  /// (each shrink at least quarters the capacity). Element order is
  /// untouched, so the heap invariant — and every popped sequence —
  /// is unchanged.
  void maybe_shrink() {
    if (heap_.capacity() <= kShrinkFloor ||
        heap_.size() >= heap_.capacity() / 8) {
      return;
    }
    std::vector<Event> tight;
    tight.reserve(std::max(heap_.size() * 2, std::size_t{64}));
    std::move(heap_.begin(), heap_.end(), std::back_inserter(tight));
    heap_.swap(tight);
  }

  static constexpr std::size_t kShrinkFloor = 1u << 16;

  std::vector<Event> heap_;  // max-heap under Later = min-(time, seq) first
  std::uint64_t next_seq_ = 0;
};

}  // namespace resmatch::sim
