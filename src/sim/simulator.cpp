#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <stdexcept>

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/event_queue.hpp"
#include "sim/timeseries.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace resmatch::sim {

namespace {

enum class EventKind { kArrival, kJobEnd, kAvailability };

struct EventPayload {
  EventKind kind = EventKind::kArrival;
  /// Trace index (arrival), running slot (end), or availability index.
  std::size_t index = 0;
};

/// Why an execution attempt ends.
enum class Outcome { kSuccess, kResourceFailure, kIntrinsicFailure };

struct RunningRecord {
  std::size_t trace_index = 0;
  Allocation allocation;
  MiB granted = 0.0;
  Seconds start = 0.0;
  Seconds expected_end = 0.0;  ///< per the user's runtime estimate
  Outcome outcome = Outcome::kSuccess;
  bool active = false;
};

}  // namespace

SimulationResult simulate(const trace::Workload& workload,
                          const ClusterSpec& cluster_spec,
                          core::Estimator& estimator,
                          sched::SchedulingPolicy& policy,
                          const SimulationConfig& config) {
  const auto& jobs = workload.jobs;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    if (jobs[i].submit < jobs[i - 1].submit) {
      throw std::invalid_argument(
          "simulate: workload must be sorted by submit time");
    }
  }

  Cluster cluster(cluster_spec, config.allocation);
  estimator.set_ladder(cluster.ladder());
  util::Rng rng(config.seed);

  SimulationResult result;
  result.estimator_name = estimator.name();
  result.policy_name = policy.name();
  result.submitted = jobs.size();
  result.offered_load = workload.offered_load(cluster.machine_count());

  EventQueue<EventPayload> events;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    events.push(jobs[i].submit, {EventKind::kArrival, i});
  }
  // While capacity additions are still pending, "does not fit the current
  // cluster" is not "can never run": unschedulable-drop decisions wait.
  std::size_t pending_capacity_adds = 0;
  for (std::size_t i = 0; i < config.availability.size(); ++i) {
    events.push(config.availability[i].time, {EventKind::kAvailability, i});
    if (config.availability[i].delta > 0) ++pending_capacity_adds;
  }

  std::deque<sched::QueuedJob> queue;
  std::vector<RunningRecord> running;   // slot-allocated
  std::vector<std::size_t> free_slots;
  std::vector<std::uint32_t> attempts(jobs.size(), 0);

  // --- running-set index (hot path) --------------------------------------
  // A live mirror of the active slots, maintained on job start/end instead
  // of being rebuilt (with a fresh allocation) on every pick_next
  // iteration. Entries stay in ascending slot order — the exact order the
  // per-iteration rebuild produced — so policies that sort or walk the
  // running set see identical input and make identical decisions.
  const bool baseline = config.baseline_loop;
  std::vector<std::size_t> index_slots;                // ascending slots
  std::vector<sched::RunningJobInfo> index_infos;      // parallel payloads
  std::size_t active_jobs = 0;                         // O(1) timeseries count
  auto index_insert = [&](std::size_t slot, sched::RunningJobInfo info) {
    const auto it =
        std::lower_bound(index_slots.begin(), index_slots.end(), slot);
    const auto pos = it - index_slots.begin();
    index_slots.insert(it, slot);
    index_infos.insert(index_infos.begin() + pos, info);
  };
  auto index_erase = [&](std::size_t slot) {
    const auto it =
        std::lower_bound(index_slots.begin(), index_slots.end(), slot);
    assert(it != index_slots.end() && *it == slot);
    const auto pos = it - index_slots.begin();
    index_slots.erase(it);
    index_infos.erase(index_infos.begin() + pos);
  };

  // Aggregates.
  double productive_node_seconds = 0.0;
  double wasted_node_seconds = 0.0;
  stats::Summary wait_stats, slowdown_stats, bounded_stats;
  stats::PercentileTracker slowdown_pct;
  Seconds first_submit = jobs.empty() ? 0.0 : jobs.front().submit;
  Seconds last_event = first_submit;
  // Time-integrated machine count: with dynamic availability the
  // utilization denominator is this integral, not machines x makespan.
  double capacity_integral = 0.0;
  Seconds capacity_since = first_submit;

  // Per-pool busy/capacity integrals, keyed by the initial pool order.
  struct PoolIntegral {
    MiB capacity = 0.0;
    double busy_node_seconds = 0.0;
    double capacity_node_seconds = 0.0;
  };
  std::vector<PoolIntegral> pool_integrals;
  for (const auto& snap : cluster.snapshot()) {
    pool_integrals.push_back({snap.capacity, 0.0, 0.0});
  }
  Seconds pool_since = first_submit;
  auto integrate_pools = [&](Seconds now) {
    const Seconds dt = now - pool_since;
    if (dt <= 0.0) return;
    if (baseline) {
      // Reference path: materialize a snapshot vector per event.
      const auto snaps = cluster.snapshot();
      for (std::size_t i = 0; i < snaps.size() && i < pool_integrals.size();
           ++i) {
        pool_integrals[i].busy_node_seconds +=
            static_cast<double>(snaps[i].busy) * dt;
        pool_integrals[i].capacity_node_seconds +=
            static_cast<double>(snaps[i].present()) * dt;
      }
    } else {
      // Same numbers straight off the cluster's incremental counters.
      const std::size_t n =
          std::min(cluster.pool_count(), pool_integrals.size());
      for (std::size_t i = 0; i < n; ++i) {
        const auto counters = cluster.pool_counters(i);
        pool_integrals[i].busy_node_seconds +=
            static_cast<double>(counters.busy) * dt;
        pool_integrals[i].capacity_node_seconds +=
            static_cast<double>(counters.present) * dt;
      }
    }
    pool_since = now;
  };

  // What the raw (un-estimated) request needs, for "lowered" accounting.
  const core::CapacityLadder ladder = cluster.ladder();

  // Engine observability: event throughput and scheduler decision time.
  // All reads of the wall clock are metric-only; simulated time is
  // untouched, so instrumented runs stay decision-identical.
  obs::Counter* events_counter = nullptr;
  obs::Histogram* schedule_hist = nullptr;
  if (config.metrics) {
    events_counter = &config.metrics->counter(
        "resmatch_sim_events_total", "Discrete events processed");
    // 100 ns .. ~0.4 s: one scheduling pass touches the whole queue head
    // and the policy, so it is orders slower than a matchd op.
    schedule_hist = &config.metrics->histogram(
        "resmatch_sim_schedule_seconds",
        "Wall time of one scheduler decision pass", {1e-7, 2.0, 22});
  }
  std::uint64_t events_processed = 0;
  const auto wall_start = std::chrono::steady_clock::now();

  auto system_state = [&]() {
    core::SystemState state;
    state.now = last_event;
    state.busy_fraction = cluster.busy_fraction();
    state.queue_length = queue.size();
    return state;
  };

  // Stamp a queue entry's preview memo: while the estimator keeps
  // reporting this epoch for the job's group, effective_request is
  // guaranteed current and the refresh preview call can be skipped.
  auto stamp_preview_memo = [&](sched::QueuedJob& q,
                                const trace::JobRecord& record) {
    if (baseline) return;
    if (const auto epoch = estimator.preview_epoch(record)) {
      q.preview_epoch = *epoch;
      q.preview_memoized = true;
    } else {
      q.preview_memoized = false;
    }
  };

  auto make_queued = [&](std::size_t trace_index) {
    const trace::JobRecord& record = jobs[trace_index];
    sched::QueuedJob q;
    q.trace_index = trace_index;
    q.id = record.id;
    q.nodes = record.nodes;
    // A side-effect-free preview: the committed estimate happens at
    // dispatch (paper Figure 2 places estimation before allocation, and a
    // queued job's group keeps learning while it waits).
    q.effective_request = estimator.preview(record, system_state());
    stamp_preview_memo(q, record);
    q.enqueue_time = last_event;
    // Runtime input for reservation math: the learned prediction when a
    // predictor is attached, otherwise the user's estimate.
    q.requested_time =
        config.runtime_predictor
            ? config.runtime_predictor->predict(record)
            : (record.requested_time > 0.0 ? record.requested_time
                                           : record.runtime);
    q.attempts = attempts[trace_index];
    return q;
  };

  auto start_job = [&](const sched::QueuedJob& q, Seconds now) -> bool {
    const trace::JobRecord& record = jobs[q.trace_index];
    // Commit the estimate now; the preview the policy saw may be stale.
    const MiB grant = estimator.estimate(record, system_state());
    auto allocation = cluster.allocate(q.nodes, grant);
    if (!allocation) {
      // The fresh estimate outgrew the preview (group escalation, RL
      // exploration) and no longer fits; undo the commitment.
      estimator.cancel(record, grant);
      return false;
    }

    RunningRecord run;
    run.trace_index = q.trace_index;
    run.allocation = *allocation;
    run.granted = grant;
    run.start = now;
    run.expected_end = now + q.requested_time;
    run.active = true;

    // Decide the attempt's fate up front (the trace knows the truth).
    Seconds end;
    if (record.status == trace::JobStatus::kFailed) {
      // Intrinsic (non-resource) failure: the false-positive source for
      // implicit feedback discussed in paper §2.1.
      run.outcome = Outcome::kIntrinsicFailure;
      end = now + rng.uniform() * record.runtime;
    } else if (record.used_mem_mib > run.granted + 1e-9) {
      run.outcome = Outcome::kResourceFailure;
      end = now + rng.uniform() * record.runtime;
    } else {
      run.outcome = Outcome::kSuccess;
      end = now + record.runtime;
    }

    ++result.attempts;
    ++attempts[q.trace_index];
    if (run.granted + 1e-9 < ladder.round_up(record.requested_mem_mib)) {
      ++result.lowered_starts;
    }

    const sched::RunningJobInfo info{run.expected_end, record.nodes,
                                     run.granted};
    std::size_t slot;
    if (!free_slots.empty()) {
      slot = free_slots.back();
      free_slots.pop_back();
      running[slot] = std::move(run);
    } else {
      slot = running.size();
      running.push_back(std::move(run));
    }
    ++active_jobs;
    if (!baseline) index_insert(slot, info);
    events.push(end, {EventKind::kJobEnd, slot});
    return true;
  };

  auto schedule = [&](Seconds now) {
    // Bounds repeated estimate-then-cancel churn from estimators whose
    // committed grant keeps exceeding the preview (randomized policies).
    int failed_starts = 0;
    std::vector<sched::RunningJobInfo> rebuilt;  // reference engine only
    for (;;) {
      // Keep the head's preview fresh: strict FCFS blocks on the head, so
      // a stale (too-high) preview would idle machines the head's group
      // has since learned it does not need. With an epoch-capable
      // estimator the refresh is O(1): an unchanged epoch guarantees the
      // stored preview is still exactly what preview() would return.
      if (!queue.empty()) {
        sched::QueuedJob& head = queue.front();
        const auto& head_record = jobs[head.trace_index];
        bool stale = true;
        if (head.preview_memoized) {
          const auto epoch = estimator.preview_epoch(head_record);
          stale = !(epoch && *epoch == head.preview_epoch);
        }
        if (stale) {
          head.effective_request =
              estimator.preview(head_record, system_state());
          stamp_preview_memo(head, head_record);
        }
        // A head whose refreshed requirement outgrew the whole cluster
        // would block strict FCFS forever; reject it like any other
        // unschedulable job (unless machines may still join).
        if (pending_capacity_adds == 0 &&
            cluster.eligible_total(head.effective_request) < head.nodes) {
          ++result.dropped_unschedulable;
          queue.pop_front();
          continue;
        }
      }
      // Policies that look at running jobs (backfilling) see the current
      // set each iteration; the set changes as picks start jobs. The live
      // index IS that view; the reference engine rebuilds it from scratch
      // (fresh allocation included) exactly as the seed engine did.
      const std::vector<sched::RunningJobInfo>* infos = &index_infos;
      if (baseline) {
        std::vector<sched::RunningJobInfo> fresh;
        fresh.reserve(running.size());
        for (const auto& run : running) {
          if (!run.active) continue;
          fresh.push_back({run.expected_end, jobs[run.trace_index].nodes,
                           run.granted});
        }
        rebuilt = std::move(fresh);
        infos = &rebuilt;
      }
      const auto pick = policy.pick_next(queue, cluster, *infos, now);
      if (!pick) return;
      assert(*pick < queue.size());
      if (!start_job(queue[*pick], now)) {
        // Fresh estimate no longer fits: refresh this entry's preview so
        // the policy re-decides with current knowledge.
        const auto& record = jobs[queue[*pick].trace_index];
        queue[*pick].effective_request =
            estimator.preview(record, system_state());
        stamp_preview_memo(queue[*pick], record);
        if (++failed_starts > 64) return;
        continue;
      }
      // Order-preserving removal; the FCFS common case picks the head,
      // which must not shift the whole tail.
      if (!baseline && *pick == 0) {
        queue.pop_front();
      } else {
        queue.erase(queue.begin() + static_cast<long>(*pick));
      }
    }
  };

  auto enqueue = [&](std::size_t trace_index, bool retry) {
    sched::QueuedJob q = make_queued(trace_index);
    // A job the cluster can never host (even empty) would block FCFS
    // forever; reject it up front, as a real scheduler would. With
    // capacity additions still scheduled, hold the job instead.
    if (pending_capacity_adds == 0 &&
        cluster.eligible_total(q.effective_request) < q.nodes) {
      ++result.dropped_unschedulable;
      RM_LOG(kDebug) << "dropping unschedulable job " << q.id;
      return;
    }
    if (retry) {
      // Paper §3.1: a failed job returns to the head of the queue.
      queue.push_front(std::move(q));
    } else {
      queue.push_back(std::move(q));
    }
  };

  while (!events.empty()) {
    const auto event = events.pop();
    ++events_processed;
    last_event = std::max(last_event, event.time);
    const Seconds now = event.time;
    integrate_pools(now);  // charge the elapsed interval to the old state

    switch (event.payload.kind) {
      case EventKind::kArrival: {
        enqueue(event.payload.index, /*retry=*/false);
        break;
      }
      case EventKind::kAvailability: {
        const AvailabilityEvent& change =
            config.availability[event.payload.index];
        // Events scheduled before the first arrival apply immediately but
        // contribute no (negative) capacity time.
        const Seconds effective = std::max(now, capacity_since);
        capacity_integral += static_cast<double>(cluster.machine_count()) *
                             (effective - capacity_since);
        capacity_since = effective;
        if (change.delta >= 0) {
          cluster.add_machines(change.capacity,
                               static_cast<std::size_t>(change.delta));
          if (pending_capacity_adds > 0) --pending_capacity_adds;
        } else {
          cluster.remove_machines(change.capacity,
                                  static_cast<std::size_t>(-change.delta));
        }
        break;
      }
      case EventKind::kJobEnd: {
        RunningRecord& run = running[event.payload.index];
        assert(run.active);
        run.active = false;
        cluster.release(run.allocation);
        free_slots.push_back(event.payload.index);
        --active_jobs;
        if (!baseline) index_erase(event.payload.index);
        const trace::JobRecord& record = jobs[run.trace_index];

        // Feedback to the estimator.
        core::Feedback fb;
        fb.success = run.outcome == Outcome::kSuccess;
        fb.granted_mib = run.granted;
        if (config.explicit_feedback) {
          fb.used_mib = record.used_mem_mib;
          fb.resource_failure = run.outcome == Outcome::kResourceFailure;
        }
        estimator.feedback(record, fb);

        if (config.runtime_predictor &&
            run.outcome == Outcome::kSuccess) {
          config.runtime_predictor->observe(record, record.runtime);
          config.runtime_predictor->record_accuracy(
              run.expected_end - run.start, record.runtime);
        }

        switch (run.outcome) {
          case Outcome::kSuccess: {
            ++result.completed;
            productive_node_seconds += record.work();
            result.granted_mib_nodes +=
                run.granted * static_cast<double>(record.nodes);
            result.used_mib_nodes +=
                record.used_mem_mib * static_cast<double>(record.nodes);
            const Seconds response = now - record.submit;
            const Seconds wait = response - record.runtime;
            wait_stats.add(wait);
            const double slowdown = response / record.runtime;
            slowdown_stats.add(slowdown);
            slowdown_pct.add(slowdown);
            bounded_stats.add(std::max(
                1.0, response /
                         std::max(record.runtime, config.bounded_slowdown_tau)));
            if (cluster.eligible_total(run.granted) >
                cluster.eligible_total(
                    ladder.round_up(record.requested_mem_mib))) {
              ++result.benefiting_jobs;
              result.benefiting_nodes += record.nodes;
            }
            break;
          }
          case Outcome::kResourceFailure: {
            ++result.resource_failures;
            wasted_node_seconds +=
                static_cast<double>(record.nodes) * (now - run.start);
            if (attempts[run.trace_index] >= config.max_attempts_per_job) {
              ++result.dropped_attempt_cap;
              RM_LOG(kWarn) << "job " << record.id
                            << " dropped after attempt cap";
            } else {
              enqueue(run.trace_index, /*retry=*/true);
            }
            break;
          }
          case Outcome::kIntrinsicFailure: {
            ++result.intrinsic_failed;
            wasted_node_seconds +=
                static_cast<double>(record.nodes) * (now - run.start);
            // Non-resource failures are not resubmitted: rerunning a
            // faulty program would fail again regardless of resources.
            break;
          }
        }
        break;
      }
    }

    // Batch same-time events before scheduling so simultaneous arrivals
    // and completions see one consistent state.
    if (!events.empty() && events.top().time == now) continue;
    if (schedule_hist != nullptr) {
      obs::ScopedSpan pass("sim.schedule", schedule_hist);
      schedule(now);
    } else {
      schedule(now);
    }
    if (config.timeseries) {
      std::size_t active = active_jobs;
      if (baseline) {
        // Reference path: recount the slot table per event, as the seed
        // engine did. Must equal the maintained counter.
        active = 0;
        for (const auto& run : running) active += run.active ? 1 : 0;
        assert(active == active_jobs);
      }
      config.timeseries->observe(now, cluster.busy_fraction(), queue.size(),
                                 active);
    }
  }

  // Jobs stranded in the queue when events ran out (possible only under
  // dynamic availability: the capacity they waited for never sufficed).
  result.dropped_unschedulable += queue.size();

  result.makespan = last_event - first_submit;
  integrate_pools(last_event);
  for (const auto& pool : pool_integrals) {
    result.pool_utilization.push_back(
        {pool.capacity, pool.capacity_node_seconds > 0.0
                            ? pool.busy_node_seconds /
                                  pool.capacity_node_seconds
                            : 0.0});
  }
  capacity_integral += static_cast<double>(cluster.machine_count()) *
                       (last_event - capacity_since);
  const double capacity_node_seconds = capacity_integral;
  if (capacity_node_seconds > 0.0) {
    result.utilization = productive_node_seconds / capacity_node_seconds;
    result.wasted_fraction = wasted_node_seconds / capacity_node_seconds;
  }
  result.mean_wait = wait_stats.mean();
  result.mean_slowdown = slowdown_stats.mean();
  result.mean_bounded_slowdown = bounded_stats.mean();
  result.p95_slowdown = slowdown_pct.percentile(95.0);
  if (result.makespan > 0.0) {
    result.throughput_per_hour =
        static_cast<double>(result.completed) / (result.makespan / 3600.0);
  }
  if (config.metrics) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (events_counter != nullptr) {
      events_counter->inc(events_processed);
    }
    // Push-style gauges only: providers would capture locals that die with
    // this frame.
    config.metrics
        ->gauge("resmatch_sim_wall_seconds", "Wall time of the last run")
        .set(wall);
    config.metrics
        ->gauge("resmatch_sim_events_per_sec",
                "Event throughput of the last run")
        .set(wall > 0.0 ? static_cast<double>(events_processed) / wall : 0.0);
  }
  return result;
}

}  // namespace resmatch::sim
