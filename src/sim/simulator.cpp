#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"
#include "sim/timeseries.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"
#include "svc/thread_pool.hpp"
#include "trace/job_stream.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace resmatch::sim {

namespace {

enum class EventKind { kArrival, kJobEnd, kAvailability };

struct EventPayload {
  EventKind kind = EventKind::kArrival;
  /// Trace index (arrival), running slot (end), or availability index.
  std::size_t index = 0;
};

/// Why an execution attempt ends.
enum class Outcome { kSuccess, kResourceFailure, kIntrinsicFailure };

struct RunningRecord {
  std::size_t trace_index = 0;
  Allocation allocation;
  MiB granted = 0.0;
  Seconds start = 0.0;
  Seconds expected_end = 0.0;  ///< per the user's runtime estimate
  Outcome outcome = Outcome::kSuccess;
  bool active = false;
};

/// Per-pool busy/capacity integrals, keyed by the initial pool order.
struct PoolIntegral {
  MiB capacity = 0.0;
  double busy_node_seconds = 0.0;
  double capacity_node_seconds = 0.0;
};

// ---------------------------------------------------------------------------
// Sharded occupancy integration.
//
// The simulation's decisions are inherently sequential (every scheduling
// pass sees global state), but the per-event O(#pools) busy/present
// integration is not: it is a fold over the history of counter values,
// and the cluster can narrate that history as a delta log. K workers
// replay the log against private shadow counters; worker w owns pools
// with index % K == w and accumulates their integrals. Each pool's
// integral is the same sequence of double adds the inline loop performs,
// in the same order, on the same values — so the merged result is
// bit-for-bit identical for ANY worker count, including the inline path.
//
// The log ships in double-buffered batches: the main thread fills one
// buffer while workers chew the other, with a condition-variable barrier
// per batch (workers never touch a buffer the main thread is writing).
// ---------------------------------------------------------------------------
class ShardedPoolIntegrator {
 public:
  /// One time advance: integrate `dt` seconds of the counter state that
  /// results from applying the first `delta_prefix` deltas of the batch.
  struct Advance {
    double dt = 0.0;
    std::size_t delta_prefix = 0;
  };

  ShardedPoolIntegrator(Cluster& cluster, std::size_t workers)
      : cluster_(cluster),
        pool_count_(cluster.pool_count()),
        workers_(workers) {
    assert(workers_ > 0);
    shadow_.resize(workers_);
    acc_busy_.resize(workers_);
    acc_present_.resize(workers_);
    for (std::size_t w = 0; w < workers_; ++w) {
      shadow_[w].resize(pool_count_);
      for (std::size_t i = 0; i < pool_count_; ++i) {
        const auto counters = cluster_.pool_counters(i);
        shadow_[w][i] = {static_cast<std::int64_t>(counters.busy),
                         static_cast<std::int64_t>(counters.present)};
      }
      acc_busy_[w].assign(pool_count_, 0.0);
      acc_present_[w].assign(pool_count_, 0.0);
    }
    cluster_.set_delta_log(&fill_deltas_);
    // If a spawn fails, wake whatever workers did start so the partial
    // join inside ThreadPool's constructor can complete.
    pool_.emplace(
        workers_, [this](std::size_t w) { worker_main(w); },
        [this] {
          std::lock_guard<std::mutex> lk(m_);
          stop_ = true;
          cv_work_.notify_all();
        });
  }

  ~ShardedPoolIntegrator() { shutdown(); }

  ShardedPoolIntegrator(const ShardedPoolIntegrator&) = delete;
  ShardedPoolIntegrator& operator=(const ShardedPoolIntegrator&) = delete;

  void advance(double dt) {
    fill_advances_.push_back({dt, fill_deltas_.size()});
    if (fill_advances_.size() >= kBatchAdvances ||
        fill_deltas_.size() >= kBatchDeltas) {
      flush();
    }
  }

  /// Drain outstanding work, join the workers, and return each pool's
  /// (busy, present) node-second integrals.
  std::vector<std::pair<double, double>> finish() {
    flush();
    shutdown();
    std::vector<std::pair<double, double>> out(pool_count_, {0.0, 0.0});
    for (std::size_t i = 0; i < pool_count_; ++i) {
      const std::size_t w = i % workers_;
      out[i] = {acc_busy_[w][i], acc_present_[w][i]};
    }
    return out;
  }

 private:
  // Batch sizing: big enough to amortize the barrier, small enough that
  // both buffers stay a sliver of the trace.
  static constexpr std::size_t kBatchAdvances = 16384;
  static constexpr std::size_t kBatchDeltas = 65536;

  void flush() {
    if (fill_advances_.empty() && fill_deltas_.empty()) return;
    std::unique_lock<std::mutex> lk(m_);
    cv_done_.wait(lk, [&] { return remaining_ == 0; });
    // Swapping keeps fill_deltas_'s address stable — the cluster keeps
    // appending to the same vector object.
    batch_deltas_.swap(fill_deltas_);
    batch_advances_.swap(fill_advances_);
    fill_deltas_.clear();
    fill_advances_.clear();
    remaining_ = workers_;
    ++gen_;
    cv_work_.notify_all();
  }

  void shutdown() {
    if (!pool_) return;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_done_.wait(lk, [&] { return remaining_ == 0; });
      stop_ = true;
      cv_work_.notify_all();
    }
    pool_->join();
    pool_.reset();
    cluster_.set_delta_log(nullptr);
  }

  void worker_main(std::size_t w) {
    std::uint64_t seen = 0;
    auto& shadow = shadow_[w];
    auto& busy_acc = acc_busy_[w];
    auto& present_acc = acc_present_[w];
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(m_);
        cv_work_.wait(lk, [&] { return stop_ || gen_ != seen; });
        if (gen_ == seen) return;  // stop with nothing new to process
        seen = gen_;
      }
      std::size_t applied = 0;
      auto apply_up_to = [&](std::size_t limit) {
        for (; applied < limit; ++applied) {
          const Cluster::PoolDelta& d = batch_deltas_[applied];
          shadow[d.pool].first += d.dbusy;
          shadow[d.pool].second += d.dpresent;
        }
      };
      for (const Advance& a : batch_advances_) {
        apply_up_to(a.delta_prefix);
        for (std::size_t i = w; i < pool_count_; i += workers_) {
          busy_acc[i] += static_cast<double>(shadow[i].first) * a.dt;
          present_acc[i] += static_cast<double>(shadow[i].second) * a.dt;
        }
      }
      // Deltas after the last advance (events at the batch's final
      // timestamp): zero elapsed time, but the shadow must track them.
      apply_up_to(batch_deltas_.size());
      {
        std::lock_guard<std::mutex> lk(m_);
        if (--remaining_ == 0) cv_done_.notify_all();
      }
    }
  }

  Cluster& cluster_;
  const std::size_t pool_count_;
  const std::size_t workers_;

  // Filling buffers (main thread only; fill_deltas_ is the cluster's log).
  std::vector<Cluster::PoolDelta> fill_deltas_;
  std::vector<Advance> fill_advances_;
  // In-flight batch (workers, read-only between gen_ bump and remaining_
  // reaching zero).
  std::vector<Cluster::PoolDelta> batch_deltas_;
  std::vector<Advance> batch_advances_;

  // Worker-private shadow counters (busy, present) and integrals.
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> shadow_;
  std::vector<std::vector<double>> acc_busy_;
  std::vector<std::vector<double>> acc_present_;

  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t gen_ = 0;
  std::size_t remaining_ = 0;
  bool stop_ = false;

  std::optional<svc::ThreadPool> pool_;
};

// ---------------------------------------------------------------------------
// Legacy engine: the pre-calendar-queue simulator, kept verbatim as the
// heap_queue/baseline_loop A/B anchor. Every event — all arrivals up
// front, availability changes, job ends — flows through the binary-heap
// EventQueue over a fully materialized workload. tests/scale_equiv_test
// gates the default engine against this one bit for bit.
// ---------------------------------------------------------------------------
SimulationResult run_legacy(const trace::Workload& workload,
                            const ClusterSpec& cluster_spec,
                            core::Estimator& estimator,
                            sched::SchedulingPolicy& policy,
                            const SimulationConfig& config) {
  const auto& jobs = workload.jobs;

  Cluster cluster(cluster_spec, config.allocation);
  estimator.set_ladder(cluster.ladder());
  util::Rng rng(config.seed);

  SimulationResult result;
  result.estimator_name = estimator.name();
  result.policy_name = policy.name();
  result.submitted = jobs.size();
  result.offered_load = workload.offered_load(cluster.machine_count());

  EventQueue<EventPayload> events;
  events.reserve(jobs.size() + config.availability.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    events.push(jobs[i].submit, {EventKind::kArrival, i});
  }
  // While capacity additions are still pending, "does not fit the current
  // cluster" is not "can never run": unschedulable-drop decisions wait.
  std::size_t pending_capacity_adds = 0;
  for (std::size_t i = 0; i < config.availability.size(); ++i) {
    events.push(config.availability[i].time, {EventKind::kAvailability, i});
    if (config.availability[i].delta > 0) ++pending_capacity_adds;
  }

  std::deque<sched::QueuedJob> queue;
  std::vector<RunningRecord> running;   // slot-allocated
  std::vector<std::size_t> free_slots;
  std::vector<std::uint32_t> attempts(jobs.size(), 0);

  // --- running-set index (hot path) --------------------------------------
  // A live mirror of the active slots, maintained on job start/end instead
  // of being rebuilt (with a fresh allocation) on every pick_next
  // iteration. Entries stay in ascending slot order — the exact order the
  // per-iteration rebuild produced — so policies that sort or walk the
  // running set see identical input and make identical decisions.
  const bool baseline = config.baseline_loop;
  std::vector<std::size_t> index_slots;                // ascending slots
  std::vector<sched::RunningJobInfo> index_infos;      // parallel payloads
  std::size_t active_jobs = 0;                         // O(1) timeseries count
  auto index_insert = [&](std::size_t slot, sched::RunningJobInfo info) {
    const auto it =
        std::lower_bound(index_slots.begin(), index_slots.end(), slot);
    const auto pos = it - index_slots.begin();
    index_slots.insert(it, slot);
    index_infos.insert(index_infos.begin() + pos, info);
  };
  auto index_erase = [&](std::size_t slot) {
    const auto it =
        std::lower_bound(index_slots.begin(), index_slots.end(), slot);
    assert(it != index_slots.end() && *it == slot);
    const auto pos = it - index_slots.begin();
    index_slots.erase(it);
    index_infos.erase(index_infos.begin() + pos);
  };

  // Aggregates.
  double productive_node_seconds = 0.0;
  double wasted_node_seconds = 0.0;
  stats::Summary wait_stats, slowdown_stats, bounded_stats;
  stats::PercentileTracker slowdown_pct;
  Seconds first_submit = jobs.empty() ? 0.0 : jobs.front().submit;
  Seconds last_event = first_submit;
  // Time-integrated machine count: with dynamic availability the
  // utilization denominator is this integral, not machines x makespan.
  double capacity_integral = 0.0;
  Seconds capacity_since = first_submit;

  std::vector<PoolIntegral> pool_integrals;
  for (const auto& snap : cluster.snapshot()) {
    pool_integrals.push_back({snap.capacity, 0.0, 0.0});
  }
  Seconds pool_since = first_submit;
  auto integrate_pools = [&](Seconds now) {
    const Seconds dt = now - pool_since;
    if (dt <= 0.0) return;
    if (baseline) {
      // Reference path: materialize a snapshot vector per event.
      const auto snaps = cluster.snapshot();
      for (std::size_t i = 0; i < snaps.size() && i < pool_integrals.size();
           ++i) {
        pool_integrals[i].busy_node_seconds +=
            static_cast<double>(snaps[i].busy) * dt;
        pool_integrals[i].capacity_node_seconds +=
            static_cast<double>(snaps[i].present()) * dt;
      }
    } else {
      // Same numbers straight off the cluster's incremental counters.
      const std::size_t n =
          std::min(cluster.pool_count(), pool_integrals.size());
      for (std::size_t i = 0; i < n; ++i) {
        const auto counters = cluster.pool_counters(i);
        pool_integrals[i].busy_node_seconds +=
            static_cast<double>(counters.busy) * dt;
        pool_integrals[i].capacity_node_seconds +=
            static_cast<double>(counters.present) * dt;
      }
    }
    pool_since = now;
  };

  // What the raw (un-estimated) request needs, for "lowered" accounting.
  const core::CapacityLadder ladder = cluster.ladder();

  // Engine observability: event throughput and scheduler decision time.
  // All reads of the wall clock are metric-only; simulated time is
  // untouched, so instrumented runs stay decision-identical.
  obs::Counter* events_counter = nullptr;
  obs::Histogram* schedule_hist = nullptr;
  if (config.metrics) {
    events_counter = &config.metrics->counter(
        "resmatch_sim_events_total", "Discrete events processed");
    // 100 ns .. ~0.4 s: one scheduling pass touches the whole queue head
    // and the policy, so it is orders slower than a matchd op.
    schedule_hist = &config.metrics->histogram(
        "resmatch_sim_schedule_seconds",
        "Wall time of one scheduler decision pass", {1e-7, 2.0, 22});
  }
  std::uint64_t events_processed = 0;
  const auto wall_start = std::chrono::steady_clock::now();

  auto system_state = [&]() {
    core::SystemState state;
    state.now = last_event;
    state.busy_fraction = cluster.busy_fraction();
    state.queue_length = queue.size();
    return state;
  };

  // Stamp a queue entry's preview memo: while the estimator keeps
  // reporting this epoch for the job's group, effective_request is
  // guaranteed current and the refresh preview call can be skipped.
  auto stamp_preview_memo = [&](sched::QueuedJob& q,
                                const trace::JobRecord& record) {
    if (baseline) return;
    if (const auto epoch = estimator.preview_epoch(record)) {
      q.preview_epoch = *epoch;
      q.preview_memoized = true;
    } else {
      q.preview_memoized = false;
    }
  };

  auto make_queued = [&](std::size_t trace_index) {
    const trace::JobRecord& record = jobs[trace_index];
    sched::QueuedJob q;
    q.trace_index = trace_index;
    q.id = record.id;
    q.nodes = record.nodes;
    // A side-effect-free preview: the committed estimate happens at
    // dispatch (paper Figure 2 places estimation before allocation, and a
    // queued job's group keeps learning while it waits).
    q.effective_request = estimator.preview(record, system_state());
    stamp_preview_memo(q, record);
    q.enqueue_time = last_event;
    // Runtime input for reservation math: the learned prediction when a
    // predictor is attached, otherwise the user's estimate.
    q.requested_time =
        config.runtime_predictor
            ? config.runtime_predictor->predict(record)
            : (record.requested_time > 0.0 ? record.requested_time
                                           : record.runtime);
    q.attempts = attempts[trace_index];
    return q;
  };

  auto start_job = [&](const sched::QueuedJob& q, Seconds now) -> bool {
    const trace::JobRecord& record = jobs[q.trace_index];
    // Commit the estimate now; the preview the policy saw may be stale.
    const MiB grant = estimator.estimate(record, system_state());
    auto allocation = cluster.allocate(q.nodes, grant);
    if (!allocation) {
      // The fresh estimate outgrew the preview (group escalation, RL
      // exploration) and no longer fits; undo the commitment.
      estimator.cancel(record, grant);
      return false;
    }

    RunningRecord run;
    run.trace_index = q.trace_index;
    run.allocation = *allocation;
    run.granted = grant;
    run.start = now;
    run.expected_end = now + q.requested_time;
    run.active = true;

    // Decide the attempt's fate up front (the trace knows the truth).
    Seconds end;
    if (record.status == trace::JobStatus::kFailed) {
      // Intrinsic (non-resource) failure: the false-positive source for
      // implicit feedback discussed in paper §2.1.
      run.outcome = Outcome::kIntrinsicFailure;
      end = now + rng.uniform() * record.runtime;
    } else if (record.used_mem_mib > run.granted + 1e-9) {
      run.outcome = Outcome::kResourceFailure;
      end = now + rng.uniform() * record.runtime;
    } else {
      run.outcome = Outcome::kSuccess;
      end = now + record.runtime;
    }

    ++result.attempts;
    ++attempts[q.trace_index];
    if (run.granted + 1e-9 < ladder.round_up(record.requested_mem_mib)) {
      ++result.lowered_starts;
    }

    const sched::RunningJobInfo info{run.expected_end, record.nodes,
                                     run.granted};
    std::size_t slot;
    if (!free_slots.empty()) {
      slot = free_slots.back();
      free_slots.pop_back();
      running[slot] = std::move(run);
    } else {
      slot = running.size();
      running.push_back(std::move(run));
    }
    ++active_jobs;
    if (!baseline) index_insert(slot, info);
    events.push(end, {EventKind::kJobEnd, slot});
    return true;
  };

  auto schedule = [&](Seconds now) {
    // Bounds repeated estimate-then-cancel churn from estimators whose
    // committed grant keeps exceeding the preview (randomized policies).
    int failed_starts = 0;
    std::vector<sched::RunningJobInfo> rebuilt;  // reference engine only
    for (;;) {
      // Keep the head's preview fresh: strict FCFS blocks on the head, so
      // a stale (too-high) preview would idle machines the head's group
      // has since learned it does not need. With an epoch-capable
      // estimator the refresh is O(1): an unchanged epoch guarantees the
      // stored preview is still exactly what preview() would return.
      if (!queue.empty()) {
        sched::QueuedJob& head = queue.front();
        const auto& head_record = jobs[head.trace_index];
        bool stale = true;
        if (head.preview_memoized) {
          const auto epoch = estimator.preview_epoch(head_record);
          stale = !(epoch && *epoch == head.preview_epoch);
        }
        if (stale) {
          head.effective_request =
              estimator.preview(head_record, system_state());
          stamp_preview_memo(head, head_record);
        }
        // A head whose refreshed requirement outgrew the whole cluster
        // would block strict FCFS forever; reject it like any other
        // unschedulable job (unless machines may still join).
        if (pending_capacity_adds == 0 &&
            cluster.eligible_total(head.effective_request) < head.nodes) {
          ++result.dropped_unschedulable;
          queue.pop_front();
          continue;
        }
      }
      // Policies that look at running jobs (backfilling) see the current
      // set each iteration; the set changes as picks start jobs. The live
      // index IS that view; the reference engine rebuilds it from scratch
      // (fresh allocation included) exactly as the seed engine did.
      const std::vector<sched::RunningJobInfo>* infos = &index_infos;
      if (baseline) {
        std::vector<sched::RunningJobInfo> fresh;
        fresh.reserve(running.size());
        for (const auto& run : running) {
          if (!run.active) continue;
          fresh.push_back({run.expected_end, jobs[run.trace_index].nodes,
                           run.granted});
        }
        rebuilt = std::move(fresh);
        infos = &rebuilt;
      }
      const auto pick = policy.pick_next(queue, cluster, *infos, now);
      if (!pick) return;
      assert(*pick < queue.size());
      if (!start_job(queue[*pick], now)) {
        // Fresh estimate no longer fits: refresh this entry's preview so
        // the policy re-decides with current knowledge.
        const auto& record = jobs[queue[*pick].trace_index];
        queue[*pick].effective_request =
            estimator.preview(record, system_state());
        stamp_preview_memo(queue[*pick], record);
        if (++failed_starts > 64) return;
        continue;
      }
      // Order-preserving removal; the FCFS common case picks the head,
      // which must not shift the whole tail.
      if (!baseline && *pick == 0) {
        queue.pop_front();
      } else {
        queue.erase(queue.begin() + static_cast<long>(*pick));
      }
    }
  };

  auto enqueue = [&](std::size_t trace_index, bool retry) {
    sched::QueuedJob q = make_queued(trace_index);
    // A job the cluster can never host (even empty) would block FCFS
    // forever; reject it up front, as a real scheduler would. With
    // capacity additions still scheduled, hold the job instead.
    if (pending_capacity_adds == 0 &&
        cluster.eligible_total(q.effective_request) < q.nodes) {
      ++result.dropped_unschedulable;
      RM_LOG(kDebug) << "dropping unschedulable job " << q.id;
      return;
    }
    if (retry) {
      // Paper §3.1: a failed job returns to the head of the queue.
      queue.push_front(std::move(q));
    } else {
      queue.push_back(std::move(q));
    }
  };

  while (!events.empty()) {
    const auto event = events.pop();
    ++events_processed;
    last_event = std::max(last_event, event.time);
    const Seconds now = event.time;
    integrate_pools(now);  // charge the elapsed interval to the old state

    switch (event.payload.kind) {
      case EventKind::kArrival: {
        enqueue(event.payload.index, /*retry=*/false);
        break;
      }
      case EventKind::kAvailability: {
        const AvailabilityEvent& change =
            config.availability[event.payload.index];
        // Events scheduled before the first arrival apply immediately but
        // contribute no (negative) capacity time.
        const Seconds effective = std::max(now, capacity_since);
        capacity_integral += static_cast<double>(cluster.machine_count()) *
                             (effective - capacity_since);
        capacity_since = effective;
        if (change.delta >= 0) {
          cluster.add_machines(change.capacity,
                               static_cast<std::size_t>(change.delta));
          if (pending_capacity_adds > 0) --pending_capacity_adds;
        } else {
          cluster.remove_machines(change.capacity,
                                  static_cast<std::size_t>(-change.delta));
        }
        break;
      }
      case EventKind::kJobEnd: {
        RunningRecord& run = running[event.payload.index];
        assert(run.active);
        run.active = false;
        cluster.release(run.allocation);
        free_slots.push_back(event.payload.index);
        --active_jobs;
        if (!baseline) index_erase(event.payload.index);
        const trace::JobRecord& record = jobs[run.trace_index];

        // Feedback to the estimator.
        core::Feedback fb;
        fb.success = run.outcome == Outcome::kSuccess;
        fb.granted_mib = run.granted;
        if (config.explicit_feedback) {
          fb.used_mib = record.used_mem_mib;
          fb.resource_failure = run.outcome == Outcome::kResourceFailure;
        }
        estimator.feedback(record, fb);

        if (config.runtime_predictor &&
            run.outcome == Outcome::kSuccess) {
          config.runtime_predictor->observe(record, record.runtime);
          config.runtime_predictor->record_accuracy(
              run.expected_end - run.start, record.runtime);
        }

        switch (run.outcome) {
          case Outcome::kSuccess: {
            ++result.completed;
            productive_node_seconds += record.work();
            result.granted_mib_nodes +=
                run.granted * static_cast<double>(record.nodes);
            result.used_mib_nodes +=
                record.used_mem_mib * static_cast<double>(record.nodes);
            const Seconds response = now - record.submit;
            const Seconds wait = response - record.runtime;
            wait_stats.add(wait);
            const double slowdown = response / record.runtime;
            slowdown_stats.add(slowdown);
            slowdown_pct.add(slowdown);
            bounded_stats.add(std::max(
                1.0, response /
                         std::max(record.runtime, config.bounded_slowdown_tau)));
            if (cluster.eligible_total(run.granted) >
                cluster.eligible_total(
                    ladder.round_up(record.requested_mem_mib))) {
              ++result.benefiting_jobs;
              result.benefiting_nodes += record.nodes;
            }
            break;
          }
          case Outcome::kResourceFailure: {
            ++result.resource_failures;
            wasted_node_seconds +=
                static_cast<double>(record.nodes) * (now - run.start);
            if (attempts[run.trace_index] >= config.max_attempts_per_job) {
              ++result.dropped_attempt_cap;
              RM_LOG(kWarn) << "job " << record.id
                            << " dropped after attempt cap";
            } else {
              enqueue(run.trace_index, /*retry=*/true);
            }
            break;
          }
          case Outcome::kIntrinsicFailure: {
            ++result.intrinsic_failed;
            wasted_node_seconds +=
                static_cast<double>(record.nodes) * (now - run.start);
            // Non-resource failures are not resubmitted: rerunning a
            // faulty program would fail again regardless of resources.
            break;
          }
        }
        break;
      }
    }

    // Batch same-time events before scheduling so simultaneous arrivals
    // and completions see one consistent state.
    if (!events.empty() && events.top().time == now) continue;
    if (schedule_hist != nullptr) {
      obs::ScopedSpan pass("sim.schedule", schedule_hist);
      schedule(now);
    } else {
      schedule(now);
    }
    if (config.timeseries) {
      std::size_t active = active_jobs;
      if (baseline) {
        // Reference path: recount the slot table per event, as the seed
        // engine did. Must equal the maintained counter.
        active = 0;
        for (const auto& run : running) active += run.active ? 1 : 0;
        assert(active == active_jobs);
      }
      config.timeseries->observe(now, cluster.busy_fraction(), queue.size(),
                                 active);
    }
  }

  // Jobs stranded in the queue when events ran out (possible only under
  // dynamic availability: the capacity they waited for never sufficed).
  result.dropped_unschedulable += queue.size();

  result.makespan = last_event - first_submit;
  integrate_pools(last_event);
  for (const auto& pool : pool_integrals) {
    result.pool_utilization.push_back(
        {pool.capacity, pool.capacity_node_seconds > 0.0
                            ? pool.busy_node_seconds /
                                  pool.capacity_node_seconds
                            : 0.0});
  }
  capacity_integral += static_cast<double>(cluster.machine_count()) *
                       (last_event - capacity_since);
  const double capacity_node_seconds = capacity_integral;
  if (capacity_node_seconds > 0.0) {
    result.utilization = productive_node_seconds / capacity_node_seconds;
    result.wasted_fraction = wasted_node_seconds / capacity_node_seconds;
  }
  result.mean_wait = wait_stats.mean();
  result.mean_slowdown = slowdown_stats.mean();
  result.mean_bounded_slowdown = bounded_stats.mean();
  result.p95_slowdown = slowdown_pct.percentile(95.0);
  if (result.makespan > 0.0) {
    result.throughput_per_hour =
        static_cast<double>(result.completed) / (result.makespan / 3600.0);
  }
  if (config.metrics) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (events_counter != nullptr) {
      events_counter->inc(events_processed);
    }
    // Push-style gauges only: providers would capture locals that die with
    // this frame.
    config.metrics
        ->gauge("resmatch_sim_wall_seconds", "Wall time of the last run")
        .set(wall);
    config.metrics
        ->gauge("resmatch_sim_events_per_sec",
                "Event throughput of the last run")
        .set(wall > 0.0 ? static_cast<double>(events_processed) / wall : 0.0);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Default engine: calendar queue + streamed arrivals + optional sharding.
//
// The legacy engine pre-pushes every arrival into the heap, so the queue
// holds the whole remaining trace (10M+ events at cluster scale) and each
// pop walks ~log2(10M) cache-missing heap levels. This engine exploits
// what the trace already guarantees — arrivals come sorted — and merges
// three independently ordered sources instead:
//
//   class 0: the arrival stream, one-record lookahead;
//   class 1: availability changes, a cursor over a pre-sorted index;
//   class 2: job-end events, the only dynamic set, in a calendar queue
//            sized by jobs *in flight*, not trace length.
//
// Equal-time ordering matches the legacy engine exactly: legacy seq
// numbers are assigned arrivals first (trace order), then availability
// (index order), then job ends (push order), so at any timestamp the
// classes pop 0 < 1 < 2 with each class internally in cursor/push order —
// precisely what this merge produces. tests/scale_equiv_test holds the
// two engines bit-identical across policies, estimators, and seeds.
// ---------------------------------------------------------------------------
SimulationResult run_merge(trace::JobStream& stream,
                           const ClusterSpec& cluster_spec,
                           core::Estimator& estimator,
                           sched::SchedulingPolicy& policy,
                           const SimulationConfig& config) {
  Cluster cluster(cluster_spec, config.allocation);
  estimator.set_ladder(cluster.ladder());
  util::Rng rng(config.seed);

  SimulationResult result;
  result.estimator_name = estimator.name();
  result.policy_name = policy.name();
  const std::size_t base_machines = cluster.machine_count();

  // --- class 0: arrival lookahead ----------------------------------------
  std::optional<trace::JobRecord> pending = stream.next();
  const Seconds first_submit = pending ? pending->submit : 0.0;
  // Offered-load accumulation in pull order: the same sum, first and last
  // submit that Workload::offered_load reads off the materialized vector.
  double pulled_work = pending ? pending->work() : 0.0;
  Seconds last_submit = first_submit;
  std::size_t pulled = pending ? 1 : 0;
  auto pull_next = [&] {
    pending = stream.next();
    if (pending) {
      if (pending->submit < last_submit) {
        throw std::invalid_argument(
            "simulate: job stream must be sorted by submit time");
      }
      pulled_work += pending->work();
      last_submit = pending->submit;
      ++pulled;
    }
  };

  // --- class 1: availability cursor --------------------------------------
  std::vector<std::size_t> avail_order(config.availability.size());
  for (std::size_t i = 0; i < avail_order.size(); ++i) avail_order[i] = i;
  std::stable_sort(avail_order.begin(), avail_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return config.availability[a].time <
                            config.availability[b].time;
                   });
  std::size_t avail_pos = 0;
  std::size_t pending_capacity_adds = 0;
  for (const auto& change : config.availability) {
    if (change.delta > 0) ++pending_capacity_adds;
  }

  // --- class 2: job ends --------------------------------------------------
  CalendarQueue<std::size_t> events;  // payload: running slot

  // Live jobs, slot-allocated: a slot holds the record (and its attempt
  // count) from arrival until the job leaves the system, so memory tracks
  // jobs in flight. Queue entries and running records refer to jobs by
  // slot — opaque to policies, so decision streams are unaffected.
  std::vector<trace::JobRecord> job_slots;
  std::vector<std::uint32_t> job_attempts;
  std::vector<std::size_t> free_job_slots;
  auto admit_job = [&](trace::JobRecord record) {
    std::size_t slot;
    if (!free_job_slots.empty()) {
      slot = free_job_slots.back();
      free_job_slots.pop_back();
      job_slots[slot] = std::move(record);
      job_attempts[slot] = 0;
    } else {
      slot = job_slots.size();
      job_slots.push_back(std::move(record));
      job_attempts.push_back(0);
    }
    return slot;
  };
  auto retire_job = [&](std::size_t slot) { free_job_slots.push_back(slot); };

  std::deque<sched::QueuedJob> queue;
  std::vector<RunningRecord> running;  // slot-allocated
  std::vector<std::size_t> free_slots;

  // Running-set index: live mirror of the active slots (see run_legacy).
  std::vector<std::size_t> index_slots;
  std::vector<sched::RunningJobInfo> index_infos;
  std::size_t active_jobs = 0;
  auto index_insert = [&](std::size_t slot, sched::RunningJobInfo info) {
    const auto it =
        std::lower_bound(index_slots.begin(), index_slots.end(), slot);
    const auto pos = it - index_slots.begin();
    index_slots.insert(it, slot);
    index_infos.insert(index_infos.begin() + pos, info);
  };
  auto index_erase = [&](std::size_t slot) {
    const auto it =
        std::lower_bound(index_slots.begin(), index_slots.end(), slot);
    assert(it != index_slots.end() && *it == slot);
    const auto pos = it - index_slots.begin();
    index_slots.erase(it);
    index_infos.erase(index_infos.begin() + pos);
  };

  // Aggregates.
  double productive_node_seconds = 0.0;
  double wasted_node_seconds = 0.0;
  stats::Summary wait_stats, slowdown_stats, bounded_stats;
  stats::PercentileTracker slowdown_pct;
  Seconds last_event = first_submit;
  double capacity_integral = 0.0;
  Seconds capacity_since = first_submit;

  std::vector<PoolIntegral> pool_integrals;
  for (const auto& snap : cluster.snapshot()) {
    pool_integrals.push_back({snap.capacity, 0.0, 0.0});
  }
  Seconds pool_since = first_submit;
  std::optional<ShardedPoolIntegrator> sharded;
  if (config.shards > 0) sharded.emplace(cluster, config.shards);
  auto integrate_pools = [&](Seconds now) {
    const Seconds dt = now - pool_since;
    if (dt <= 0.0) return;
    if (sharded) {
      sharded->advance(dt);
    } else {
      const std::size_t n =
          std::min(cluster.pool_count(), pool_integrals.size());
      for (std::size_t i = 0; i < n; ++i) {
        const auto counters = cluster.pool_counters(i);
        pool_integrals[i].busy_node_seconds +=
            static_cast<double>(counters.busy) * dt;
        pool_integrals[i].capacity_node_seconds +=
            static_cast<double>(counters.present) * dt;
      }
    }
    pool_since = now;
  };

  const core::CapacityLadder ladder = cluster.ladder();

  obs::Counter* events_counter = nullptr;
  obs::Histogram* schedule_hist = nullptr;
  if (config.metrics) {
    events_counter = &config.metrics->counter(
        "resmatch_sim_events_total", "Discrete events processed");
    schedule_hist = &config.metrics->histogram(
        "resmatch_sim_schedule_seconds",
        "Wall time of one scheduler decision pass", {1e-7, 2.0, 22});
  }
  std::uint64_t events_processed = 0;
  const auto wall_start = std::chrono::steady_clock::now();

  auto system_state = [&]() {
    core::SystemState state;
    state.now = last_event;
    state.busy_fraction = cluster.busy_fraction();
    state.queue_length = queue.size();
    return state;
  };

  auto stamp_preview_memo = [&](sched::QueuedJob& q,
                                const trace::JobRecord& record) {
    if (const auto epoch = estimator.preview_epoch(record)) {
      q.preview_epoch = *epoch;
      q.preview_memoized = true;
    } else {
      q.preview_memoized = false;
    }
  };

  auto make_queued = [&](std::size_t job_slot) {
    const trace::JobRecord& record = job_slots[job_slot];
    sched::QueuedJob q;
    q.trace_index = job_slot;
    q.id = record.id;
    q.nodes = record.nodes;
    q.effective_request = estimator.preview(record, system_state());
    stamp_preview_memo(q, record);
    q.enqueue_time = last_event;
    q.requested_time =
        config.runtime_predictor
            ? config.runtime_predictor->predict(record)
            : (record.requested_time > 0.0 ? record.requested_time
                                           : record.runtime);
    q.attempts = job_attempts[job_slot];
    return q;
  };

  auto start_job = [&](const sched::QueuedJob& q, Seconds now) -> bool {
    const trace::JobRecord& record = job_slots[q.trace_index];
    const MiB grant = estimator.estimate(record, system_state());
    auto allocation = cluster.allocate(q.nodes, grant);
    if (!allocation) {
      estimator.cancel(record, grant);
      return false;
    }

    RunningRecord run;
    run.trace_index = q.trace_index;
    run.allocation = *allocation;
    run.granted = grant;
    run.start = now;
    run.expected_end = now + q.requested_time;
    run.active = true;

    Seconds end;
    if (record.status == trace::JobStatus::kFailed) {
      run.outcome = Outcome::kIntrinsicFailure;
      end = now + rng.uniform() * record.runtime;
    } else if (record.used_mem_mib > run.granted + 1e-9) {
      run.outcome = Outcome::kResourceFailure;
      end = now + rng.uniform() * record.runtime;
    } else {
      run.outcome = Outcome::kSuccess;
      end = now + record.runtime;
    }

    ++result.attempts;
    ++job_attempts[q.trace_index];
    if (run.granted + 1e-9 < ladder.round_up(record.requested_mem_mib)) {
      ++result.lowered_starts;
    }

    const sched::RunningJobInfo info{run.expected_end, record.nodes,
                                     run.granted};
    std::size_t slot;
    if (!free_slots.empty()) {
      slot = free_slots.back();
      free_slots.pop_back();
      running[slot] = std::move(run);
    } else {
      slot = running.size();
      running.push_back(std::move(run));
    }
    ++active_jobs;
    index_insert(slot, info);
    events.push(end, slot);
    return true;
  };

  auto schedule = [&](Seconds now) {
    int failed_starts = 0;
    for (;;) {
      if (!queue.empty()) {
        sched::QueuedJob& head = queue.front();
        const auto& head_record = job_slots[head.trace_index];
        bool stale = true;
        if (head.preview_memoized) {
          const auto epoch = estimator.preview_epoch(head_record);
          stale = !(epoch && *epoch == head.preview_epoch);
        }
        if (stale) {
          head.effective_request =
              estimator.preview(head_record, system_state());
          stamp_preview_memo(head, head_record);
        }
        if (pending_capacity_adds == 0 &&
            cluster.eligible_total(head.effective_request) < head.nodes) {
          ++result.dropped_unschedulable;
          retire_job(head.trace_index);
          queue.pop_front();
          continue;
        }
      }
      const auto pick = policy.pick_next(queue, cluster, index_infos, now);
      if (!pick) return;
      assert(*pick < queue.size());
      if (!start_job(queue[*pick], now)) {
        const auto& record = job_slots[queue[*pick].trace_index];
        queue[*pick].effective_request =
            estimator.preview(record, system_state());
        stamp_preview_memo(queue[*pick], record);
        if (++failed_starts > 64) return;
        continue;
      }
      if (*pick == 0) {
        queue.pop_front();
      } else {
        queue.erase(queue.begin() + static_cast<long>(*pick));
      }
    }
  };

  auto enqueue = [&](std::size_t job_slot, bool retry) {
    sched::QueuedJob q = make_queued(job_slot);
    if (pending_capacity_adds == 0 &&
        cluster.eligible_total(q.effective_request) < q.nodes) {
      ++result.dropped_unschedulable;
      RM_LOG(kDebug) << "dropping unschedulable job " << q.id;
      retire_job(job_slot);
      return;
    }
    if (retry) {
      queue.push_front(std::move(q));
    } else {
      queue.push_back(std::move(q));
    }
  };

  // Three-way merge: smallest time wins; ties by class (arrival <
  // availability < job end), matching the legacy engine's seq order.
  enum class Src : std::uint8_t { kNone, kArrival, kAvail, kEnd };
  auto peek = [&]() -> std::pair<Src, Seconds> {
    Src src = Src::kNone;
    Seconds t = 0.0;
    if (pending) {
      src = Src::kArrival;
      t = pending->submit;
    }
    if (avail_pos < avail_order.size()) {
      const Seconds at = config.availability[avail_order[avail_pos]].time;
      if (src == Src::kNone || at < t) {
        src = Src::kAvail;
        t = at;
      }
    }
    if (!events.empty()) {
      const Seconds et = events.top().time;
      if (src == Src::kNone || et < t) {
        src = Src::kEnd;
        t = et;
      }
    }
    return {src, t};
  };

  for (;;) {
    const auto [src, now] = peek();
    if (src == Src::kNone) break;
    ++events_processed;
    last_event = std::max(last_event, now);
    integrate_pools(now);  // charge the elapsed interval to the old state

    switch (src) {
      case Src::kArrival: {
        const std::size_t slot = admit_job(std::move(*pending));
        pull_next();
        enqueue(slot, /*retry=*/false);
        break;
      }
      case Src::kAvail: {
        const AvailabilityEvent& change =
            config.availability[avail_order[avail_pos++]];
        const Seconds effective = std::max(now, capacity_since);
        capacity_integral += static_cast<double>(cluster.machine_count()) *
                             (effective - capacity_since);
        capacity_since = effective;
        if (change.delta >= 0) {
          cluster.add_machines(change.capacity,
                               static_cast<std::size_t>(change.delta));
          if (pending_capacity_adds > 0) --pending_capacity_adds;
        } else {
          cluster.remove_machines(change.capacity,
                                  static_cast<std::size_t>(-change.delta));
        }
        break;
      }
      case Src::kEnd: {
        const auto event = events.pop();
        RunningRecord& run = running[event.payload];
        assert(run.active);
        run.active = false;
        cluster.release(run.allocation);
        free_slots.push_back(event.payload);
        --active_jobs;
        index_erase(event.payload);
        const trace::JobRecord& record = job_slots[run.trace_index];

        core::Feedback fb;
        fb.success = run.outcome == Outcome::kSuccess;
        fb.granted_mib = run.granted;
        if (config.explicit_feedback) {
          fb.used_mib = record.used_mem_mib;
          fb.resource_failure = run.outcome == Outcome::kResourceFailure;
        }
        estimator.feedback(record, fb);

        if (config.runtime_predictor && run.outcome == Outcome::kSuccess) {
          config.runtime_predictor->observe(record, record.runtime);
          config.runtime_predictor->record_accuracy(
              run.expected_end - run.start, record.runtime);
        }

        switch (run.outcome) {
          case Outcome::kSuccess: {
            ++result.completed;
            productive_node_seconds += record.work();
            result.granted_mib_nodes +=
                run.granted * static_cast<double>(record.nodes);
            result.used_mib_nodes +=
                record.used_mem_mib * static_cast<double>(record.nodes);
            const Seconds response = now - record.submit;
            const Seconds wait = response - record.runtime;
            wait_stats.add(wait);
            const double slowdown = response / record.runtime;
            slowdown_stats.add(slowdown);
            slowdown_pct.add(slowdown);
            bounded_stats.add(std::max(
                1.0,
                response /
                    std::max(record.runtime, config.bounded_slowdown_tau)));
            if (cluster.eligible_total(run.granted) >
                cluster.eligible_total(
                    ladder.round_up(record.requested_mem_mib))) {
              ++result.benefiting_jobs;
              result.benefiting_nodes += record.nodes;
            }
            retire_job(run.trace_index);
            break;
          }
          case Outcome::kResourceFailure: {
            ++result.resource_failures;
            wasted_node_seconds +=
                static_cast<double>(record.nodes) * (now - run.start);
            if (job_attempts[run.trace_index] >=
                config.max_attempts_per_job) {
              ++result.dropped_attempt_cap;
              RM_LOG(kWarn) << "job " << record.id
                            << " dropped after attempt cap";
              retire_job(run.trace_index);
            } else {
              enqueue(run.trace_index, /*retry=*/true);
            }
            break;
          }
          case Outcome::kIntrinsicFailure: {
            ++result.intrinsic_failed;
            wasted_node_seconds +=
                static_cast<double>(record.nodes) * (now - run.start);
            retire_job(run.trace_index);
            break;
          }
        }
        break;
      }
      case Src::kNone:
        break;  // unreachable; the loop broke above
    }

    // Batch same-time events before scheduling so simultaneous arrivals
    // and completions see one consistent state.
    const auto [next_src, next_time] = peek();
    if (next_src != Src::kNone && next_time == now) continue;
    if (schedule_hist != nullptr) {
      obs::ScopedSpan pass("sim.schedule", schedule_hist);
      schedule(now);
    } else {
      schedule(now);
    }
    if (config.timeseries) {
      config.timeseries->observe(now, cluster.busy_fraction(), queue.size(),
                                 active_jobs);
    }
  }

  result.submitted = pulled;
  {
    const Seconds span = last_submit - first_submit;
    result.offered_load =
        (span <= 0.0 || base_machines == 0)
            ? 0.0
            : pulled_work / (static_cast<double>(base_machines) * span);
  }

  // Jobs stranded in the queue when events ran out (possible only under
  // dynamic availability: the capacity they waited for never sufficed).
  result.dropped_unschedulable += queue.size();

  result.makespan = last_event - first_submit;
  integrate_pools(last_event);
  if (sharded) {
    const auto merged = sharded->finish();
    for (std::size_t i = 0;
         i < merged.size() && i < pool_integrals.size(); ++i) {
      pool_integrals[i].busy_node_seconds = merged[i].first;
      pool_integrals[i].capacity_node_seconds = merged[i].second;
    }
  }
  for (const auto& pool : pool_integrals) {
    result.pool_utilization.push_back(
        {pool.capacity, pool.capacity_node_seconds > 0.0
                            ? pool.busy_node_seconds /
                                  pool.capacity_node_seconds
                            : 0.0});
  }
  capacity_integral += static_cast<double>(cluster.machine_count()) *
                       (last_event - capacity_since);
  const double capacity_node_seconds = capacity_integral;
  if (capacity_node_seconds > 0.0) {
    result.utilization = productive_node_seconds / capacity_node_seconds;
    result.wasted_fraction = wasted_node_seconds / capacity_node_seconds;
  }
  result.mean_wait = wait_stats.mean();
  result.mean_slowdown = slowdown_stats.mean();
  result.mean_bounded_slowdown = bounded_stats.mean();
  result.p95_slowdown = slowdown_pct.percentile(95.0);
  if (result.makespan > 0.0) {
    result.throughput_per_hour =
        static_cast<double>(result.completed) / (result.makespan / 3600.0);
  }
  if (config.metrics) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (events_counter != nullptr) {
      events_counter->inc(events_processed);
    }
    config.metrics
        ->gauge("resmatch_sim_wall_seconds", "Wall time of the last run")
        .set(wall);
    config.metrics
        ->gauge("resmatch_sim_events_per_sec",
                "Event throughput of the last run")
        .set(wall > 0.0 ? static_cast<double>(events_processed) / wall : 0.0);
  }
  return result;
}

void require_sorted(const trace::Workload& workload) {
  const auto& jobs = workload.jobs;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    if (jobs[i].submit < jobs[i - 1].submit) {
      throw std::invalid_argument(
          "simulate: workload must be sorted by submit time");
    }
  }
}

void require_unsharded_anchor(const SimulationConfig& config) {
  if (config.shards > 0) {
    throw std::invalid_argument(
        "simulate: heap_queue/baseline_loop are single-shard anchors; "
        "shards require the default engine");
  }
}

}  // namespace

SimulationResult simulate(const trace::Workload& workload,
                          const ClusterSpec& cluster_spec,
                          core::Estimator& estimator,
                          sched::SchedulingPolicy& policy,
                          const SimulationConfig& config) {
  require_sorted(workload);
  if (config.baseline_loop || config.heap_queue) {
    require_unsharded_anchor(config);
    return run_legacy(workload, cluster_spec, estimator, policy, config);
  }
  trace::VectorJobStream stream(workload);
  return run_merge(stream, cluster_spec, estimator, policy, config);
}

SimulationResult simulate(trace::JobStream& stream,
                          const ClusterSpec& cluster_spec,
                          core::Estimator& estimator,
                          sched::SchedulingPolicy& policy,
                          const SimulationConfig& config) {
  if (config.baseline_loop || config.heap_queue) {
    // The anchor engines want the whole vector; materialize. They exist
    // for A/B comparison, not for cluster-scale memory budgets.
    require_unsharded_anchor(config);
    trace::Workload workload;
    workload.name = stream.name();
    workload.jobs.reserve(stream.size_hint());
    while (auto job = stream.next()) workload.jobs.push_back(*std::move(job));
    require_sorted(workload);
    return run_legacy(workload, cluster_spec, estimator, policy, config);
  }
  return run_merge(stream, cluster_spec, estimator, policy, config);
}

}  // namespace resmatch::sim
