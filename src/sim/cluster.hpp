// Heterogeneous cluster model.
//
// Machines are grouped into pools of identical per-node memory capacity
// (the paper's clusters are two pools: 512 machines with 32 MiB and 512
// with a smaller size). Space sharing, no preemption: a machine runs one
// job process at a time. Because machines within a pool are
// indistinguishable, allocation bookkeeping is per-pool counters — O(#pools)
// per operation regardless of machine count.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/capacity_ladder.hpp"
#include "sched/policy.hpp"
#include "util/resource_vector.hpp"
#include "util/small_vector.hpp"
#include "util/types.hpp"

namespace resmatch::sim {

/// One homogeneous pool in a cluster specification. `cpu`/`gpu` describe
/// the per-node core and accelerator counts for multi-resource packing;
/// legacy single-dimension specs leave them 0 and behave exactly as
/// before (every vector query with dims == 1 reads only `capacity`).
struct PoolSpec {
  MiB capacity = 0.0;
  std::size_t count = 0;
  double cpu = 0.0;
  double gpu = 0.0;
};

using ClusterSpec = std::vector<PoolSpec>;

/// The paper's experimental cluster (§3): 512 machines with 32 MiB plus
/// 512 machines with `second_pool_mib` (24 MiB in Figures 5-6, swept
/// 1..32 MiB in Figure 8).
[[nodiscard]] ClusterSpec cm5_heterogeneous(MiB second_pool_mib,
                                            std::size_t pool_size = 512);

/// Which machines the allocator prefers among those that qualify.
enum class AllocationPolicy {
  kBestFit,   ///< smallest adequate capacity first (preserves big machines)
  kWorstFit,  ///< largest capacity first
};

/// One pool's share of a placement (trivially copyable, unlike
/// std::pair, so it qualifies for SmallVector inline storage).
struct PoolTake {
  std::size_t pool_index = 0;
  std::size_t count = 0;
};

/// A successful placement: machine counts taken from each pool.
struct Allocation {
  /// Machines taken per pool; empty means "not allocated". Inline
  /// storage: placements span at most a handful of capacity classes, so
  /// job starts/stops stay off the heap.
  util::SmallVector<PoolTake, 4> pool_counts;
  MiB min_capacity = 0.0;  ///< smallest machine capacity in the allocation
  std::uint32_t nodes = 0;

  [[nodiscard]] bool valid() const noexcept { return !pool_counts.empty(); }
};

class Cluster final : public sched::ClusterView {
 public:
  explicit Cluster(ClusterSpec spec,
                   AllocationPolicy policy = AllocationPolicy::kBestFit);

  /// Capacity rungs for Algorithm 1's rounding step.
  [[nodiscard]] core::CapacityLadder ladder() const;

  /// Capacity rungs of one resource dimension. Dimension 0 (memory) is
  /// exactly ladder(); higher dimensions skip pools that do not provision
  /// the resource (capacity 0), so a GPU-less pool adds no GPU rung.
  [[nodiscard]] core::CapacityLadder ladder_for_dim(std::size_t dim) const;

  // sched::ClusterView:
  [[nodiscard]] std::size_t eligible_free(MiB min_capacity) const override;
  [[nodiscard]] std::size_t eligible_total(MiB min_capacity) const override;
  [[nodiscard]] std::size_t machine_count() const override;

  [[nodiscard]] std::size_t busy_count() const noexcept { return busy_; }
  [[nodiscard]] double busy_fraction() const noexcept;

  /// Take `nodes` machines, each with capacity >= min_capacity, following
  /// the fit policy. All-or-nothing; nullopt when not enough machines.
  [[nodiscard]] std::optional<Allocation> allocate(std::uint32_t nodes,
                                                   MiB min_capacity);

  // --- vector (multi-resource) queries ------------------------------------
  //
  // The same pool walk generalised to component-wise eligibility: a pool
  // qualifies when its capacity vector covers `req` in the first `dims`
  // dimensions. With dims == 1 every method below reduces bit for bit to
  // its scalar counterpart (same comparison, same walk order), which is
  // what the dims=1 equivalence gate in tests/mr_equiv_test.cpp pins.

  /// Free machines whose capacity vector covers `req` (first `dims` dims).
  [[nodiscard]] std::size_t eligible_free_vec(const ResourceVector& req,
                                              std::size_t dims) const;

  /// All machines (post-drain) whose capacity vector covers `req`.
  [[nodiscard]] std::size_t eligible_total_vec(const ResourceVector& req,
                                               std::size_t dims) const;

  /// Vector allocate: take `nodes` machines each covering `req` in the
  /// first `dims` dimensions, best/worst-fit by memory capacity (pool
  /// order). Release with the ordinary release().
  [[nodiscard]] std::optional<Allocation> allocate_vec(
      std::uint32_t nodes, const ResourceVector& req, std::size_t dims);

  /// Per-node capacity vector of pool `i` (memory, CPU, GPU).
  [[nodiscard]] ResourceVector pool_capacity_vec(std::size_t i) const noexcept {
    return pools_[i].cap;
  }

  /// Return an allocation's machines. Must match a prior allocate().
  /// Machines owed to a pending removal leave the cluster instead of
  /// becoming free again.
  void release(const Allocation& allocation);

  // --- dynamic availability (paper §1: machines join and leave) ----------

  /// Add `count` machines of an EXISTING capacity class (the capacity
  /// ladder is fixed for the cluster's lifetime so estimators stay
  /// consistent). Throws std::invalid_argument for unknown capacities.
  void add_machines(MiB capacity, std::size_t count);

  /// Remove `count` machines of a capacity class. Free machines leave
  /// immediately; busy ones drain — they depart as their jobs release
  /// them. Totals (and thus schedulability) drop immediately. Throws for
  /// unknown capacities; removing more than the class holds clamps to
  /// "remove them all".
  void remove_machines(MiB capacity, std::size_t count);

  /// Machines that have been removed but are still running jobs.
  [[nodiscard]] std::size_t draining_count() const noexcept;

  /// Point-in-time view of one capacity class.
  struct PoolSnapshot {
    MiB capacity = 0.0;
    std::size_t total = 0;     ///< machines that will remain after drains
    std::size_t busy = 0;      ///< includes draining machines running jobs
    std::size_t draining = 0;  ///< removed machines still running jobs

    /// Machines physically present right now.
    [[nodiscard]] std::size_t present() const noexcept {
      return total + draining;
    }
  };

  /// Snapshot of all capacity classes, ascending by capacity.
  [[nodiscard]] std::vector<PoolSnapshot> snapshot() const;

  // --- allocation-free per-pool counters (simulator hot path) ------------

  /// Live counters of one capacity class, maintained incrementally by
  /// allocate()/release()/add_machines()/remove_machines(). Identical to
  /// the numbers snapshot() derives, but reading them allocates nothing —
  /// the simulator's per-event pool integration depends on that.
  struct PoolCounters {
    MiB capacity = 0.0;
    std::size_t busy = 0;     ///< machines running jobs (incl. draining)
    std::size_t present = 0;  ///< machines physically present (total + draining)
  };

  /// Number of capacity classes (stable for the cluster's lifetime;
  /// ascending capacity, same order as snapshot()).
  [[nodiscard]] std::size_t pool_count() const noexcept {
    return pools_.size();
  }

  /// O(1), allocation-free read of pool `i`'s counters.
  [[nodiscard]] PoolCounters pool_counters(std::size_t i) const noexcept {
    const Pool& p = pools_[i];
    return {p.capacity, p.busy, p.total + p.draining};
  }

  // --- counter-change log (sharded simulation) ---------------------------

  /// One bookkeeping change to a pool's (busy, present) counters, exactly
  /// as pool_counters() would observe it.
  struct PoolDelta {
    std::uint32_t pool = 0;
    std::int64_t dbusy = 0;
    std::int64_t dpresent = 0;
  };

  /// Append every subsequent counter change to `log` (nullptr disables;
  /// not owned). The sharded simulation engine replays this log against
  /// shadow counters on worker threads: because each pool's deltas land
  /// in the log in mutation order, any replayer reproduces the inline
  /// counters — and any per-pool integral over them — bit for bit.
  void set_delta_log(std::vector<PoolDelta>* log) noexcept {
    delta_log_ = log;
  }

  [[nodiscard]] const std::vector<PoolSpec>& spec() const noexcept {
    return spec_;
  }

 private:
  struct Pool {
    MiB capacity = 0.0;
    std::size_t total = 0;     ///< machines that will remain after drains
    std::size_t free = 0;
    std::size_t draining = 0;  ///< busy machines owed to a removal
    /// Machines currently running jobs (== total - free + draining, kept
    /// explicitly so per-event reads never re-derive or allocate).
    std::size_t busy = 0;
    /// Full per-node capacity vector; cap[kDimMem] == capacity.
    ResourceVector cap{};
  };

  Pool* find_pool(MiB capacity);

  void log_delta(std::size_t pool, std::int64_t dbusy,
                 std::int64_t dpresent) {
    if (delta_log_ != nullptr && (dbusy != 0 || dpresent != 0)) {
      delta_log_->push_back(
          {static_cast<std::uint32_t>(pool), dbusy, dpresent});
    }
  }

  ClusterSpec spec_;
  std::vector<Pool> pools_;  // ascending capacity
  AllocationPolicy policy_;
  std::size_t machines_ = 0;
  std::size_t busy_ = 0;
  std::vector<PoolDelta>* delta_log_ = nullptr;
};

}  // namespace resmatch::sim
