// serve_replay — decision-equivalence harness for the online service.
//
// Replays one workload through the simulator twice: once with the offline
// SuccessiveApproximationEstimator, once with a svc::Matchd instance stood
// behind the svc::MatchdEstimator adapter, and compares the two grant
// streams decision by decision.
//
// This is the enforcement of matchd's determinism contract: driven
// serially (which the discrete-event simulator is, even when matchd runs
// its worker pool — the adapter waits for each enqueued request), the
// service must produce byte-identical decisions to the offline estimator,
// because both run the same core::SaGroupState transitions over the same
// similarity grouping. Any nonzero mismatch count is a bug in the service
// layer, not a tolerable drift.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "svc/matchd.hpp"

namespace resmatch::sim {

struct ServeReplayConfig {
  SimulationConfig sim;
  /// Service construction; workers > 0 routes every decision through the
  /// admission queue and worker pool. Leave store.max_groups at its large
  /// default for equivalence — eviction intentionally forgets state the
  /// offline estimator remembers.
  svc::MatchdConfig matchd;
  std::string policy = "fcfs";
};

/// One compared decision (i-th estimator grant of the replay).
struct ReplayDecision {
  JobId job_id = 0;
  MiB offline_mib = 0.0;
  MiB service_mib = 0.0;

  [[nodiscard]] bool matches() const noexcept {
    return offline_mib == service_mib;  // byte-identical, no epsilon
  }
};

struct ServeReplayResult {
  SimulationResult offline;
  SimulationResult service;
  /// Decisions compared (grant stream length; both runs must agree).
  std::size_t decisions = 0;
  /// Decisions whose grants differ — must be 0 for a serial drive.
  std::size_t mismatches = 0;
  /// First few differing decisions, for diagnostics.
  std::vector<ReplayDecision> first_mismatches;
  /// Service-side counters after the replay.
  svc::MatchdStats stats;

  [[nodiscard]] bool identical() const noexcept {
    return mismatches == 0 &&
           offline.utilization == service.utilization &&
           offline.mean_slowdown == service.mean_slowdown;
  }
};

/// Run the paired replay. Fresh estimator, service, and policy instances
/// are created per run so the comparison starts from identical state.
[[nodiscard]] ServeReplayResult serve_replay(const trace::Workload& workload,
                                             const ClusterSpec& cluster_spec,
                                             ServeReplayConfig config = {});

// --- crash-recovery equivalence ---------------------------------------------

/// Configuration for crash_replay. `matchd.durability.wal_dir` must be
/// set — the crashed service is recovered from its WAL.
struct CrashReplayConfig {
  svc::MatchdConfig matchd;
  /// Submissions served before the simulated crash. 0 = crash before any
  /// traffic (recovery of an empty log must also work).
  std::size_t crash_after = 0;
  /// Leave a torn half-frame at one WAL tail, as a mid-write power cut
  /// would; replay must drop it and still match.
  bool torn_tail = false;
};

struct CrashReplayResult {
  /// Decisions compared (one per job; both drives see every job).
  std::size_t decisions = 0;
  /// Decisions whose grants differ between the fault-free reference run
  /// and the crashed-and-recovered run — must be 0.
  std::size_t mismatches = 0;
  std::vector<ReplayDecision> first_mismatches;
  /// What the restarted service reconstructed from disk.
  svc::RecoveryStats recovery;
  /// Counters of the restarted (post-recovery) service.
  svc::MatchdStats stats;

  [[nodiscard]] bool identical() const noexcept { return mismatches == 0; }
};

/// The durability contract, end to end: drive the workload (submit +
/// explicit feedback per job, arrival order) through a WAL-backed service,
/// crash it after `crash_after` submissions, recover a fresh instance from
/// the same WAL directory, finish the workload there, and compare the
/// concatenated grant stream byte-for-byte against one uninterrupted
/// fault-free run. With every committed mutation logged (wal_flush_every
/// == 1), the crash must be invisible in the decision stream.
[[nodiscard]] CrashReplayResult crash_replay(const trace::Workload& workload,
                                             const ClusterSpec& cluster_spec,
                                             CrashReplayConfig config);

}  // namespace resmatch::sim
