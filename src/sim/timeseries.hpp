// Time-series instrumentation for simulation runs.
//
// The paper reads its Figure 5 comparison "at the saturation points where
// the linear growth of utilization stops" (footnote 4, citing
// Frachtenberg & Feitelson's evaluation-pitfalls paper). Detecting that
// knee honestly requires seeing the system's trajectory, not just end-of-
// run aggregates; this collector samples cluster occupancy and queue
// depth as the simulation advances.
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace resmatch::sim {

struct TimeSeriesPoint {
  Seconds time = 0.0;
  double busy_fraction = 0.0;   ///< busy machines / machines
  std::size_t queue_length = 0;
  std::size_t running_jobs = 0;
};

/// Samples at most one point per `interval` of simulated time. Attach via
/// SimulationConfig::timeseries; the simulator calls observe() at every
/// event, the collector down-samples.
class TimeSeries {
 public:
  explicit TimeSeries(Seconds interval);

  void observe(Seconds now, double busy_fraction, std::size_t queue_length,
               std::size_t running_jobs);

  [[nodiscard]] const std::vector<TimeSeriesPoint>& points() const noexcept {
    return points_;
  }

  [[nodiscard]] double mean_busy_fraction() const noexcept;
  [[nodiscard]] std::size_t max_queue_length() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

 private:
  Seconds interval_;
  Seconds next_sample_ = 0.0;
  std::vector<TimeSeriesPoint> points_;
};

}  // namespace resmatch::sim
