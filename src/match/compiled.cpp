#include "match/compiled.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace resmatch::match {

namespace {

/// Inline (compile-side) and materialization (machine-side) chain caps.
/// Their sum stays below the tree evaluator's depth-64 limit, so no
/// compiled evaluation can ever diverge from the tree on that limit: any
/// chain the caps reject is handled by fallback instead (see compiled.hpp
/// header comment).
constexpr int kMaxInlineDepth = 32;
constexpr int kMaxChainDepth = 32;
constexpr std::size_t kMaxProgram = 8192;

/// Purity + chain-depth analysis of one machine ad's attributes.
///
/// An attribute is MATERIALIZABLE (its standalone value equals its value
/// inside any match) iff its transitive reference closure contains no
/// `other.` refs, no bare refs the machine fails to define (those would
/// Condor-fall-through to the request), and no chain deeper than
/// kMaxChainDepth lookups (cycles included). The walk is conservative:
/// it visits both branches of lazy operators, so an impure-but-dead
/// branch still demotes the attribute — that only costs a fallback row,
/// never correctness.
class PurityScan {
 public:
  explicit PurityScan(const ClassAd& machine) : machine_(&machine) {}

  /// Chain depth in lookups of referencing `name` from outside the ad,
  /// or -1 when the attribute is not materializable.
  int ref_depth(const std::string& name) {
    const auto it = memo_.find(name);
    if (it != memo_.end()) return it->second;
    if (!in_progress_.insert(name).second) return -1;  // reference cycle
    const ExprPtr* found = machine_->find(name);
    int depth = -1;
    if (found) {
      const int inner = walk(**found);
      if (inner >= 0 && inner + 1 <= kMaxChainDepth) depth = inner + 1;
    }
    in_progress_.erase(name);
    memo_.emplace(name, depth);
    return depth;
  }

 private:
  int walk(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        return 0;
      case ExprKind::kAttrRef: {
        if (expr.scope == Scope::kOther) return -1;  // needs the request
        if (!machine_->has(expr.name)) {
          // my.<missing> is UNDEFINED regardless of the counterpart ad
          // (pure); a bare miss falls through to the request (impure).
          return expr.scope == Scope::kSelf ? 1 : -1;
        }
        return ref_depth(expr.name);
      }
      default: {
        int deepest = 0;
        for (const ExprPtr& child : expr.children) {
          const int d = walk(*child);
          if (d < 0) return -1;
          deepest = std::max(deepest, d);
        }
        return deepest;
      }
    }
  }

  const ClassAd* machine_;
  std::unordered_map<std::string, int> memo_;
  std::unordered_set<std::string> in_progress_;
};

}  // namespace

// --- MachineTable ------------------------------------------------------------

MachineTable MachineTable::build(const std::vector<ClassAd>& machines) {
  MachineTable t;
  t.machines_ = &machines;
  t.rows_ = machines.size();
  t.req_group_of_row_.resize(machines.size(), 0);
  t.group_exprs_.push_back(nullptr);  // group 0: no requirements

  // Pass 1: the column set is the union of every machine's attribute
  // names, so `column_of` is total over anything a program can load.
  for (const ClassAd& m : machines) {
    for (const std::string& name : m.names()) {
      if (t.column_index_.emplace(name, static_cast<int>(t.columns_.size()))
              .second) {
        Column col;
        col.name = name;
        col.cells.resize(machines.size());
        t.columns_.push_back(std::move(col));
      }
    }
  }
  // Late-added columns must still cover every row.
  for (Column& col : t.columns_) col.cells.resize(machines.size());

  // Pass 2: materialize cells + group rows by requirements source.
  std::unordered_map<std::string, std::size_t> group_ids;
  for (std::size_t row = 0; row < machines.size(); ++row) {
    const ClassAd& m = machines[row];
    PurityScan purity(m);
    for (const std::string& name : m.names()) {
      Cell& cell = t.columns_[static_cast<std::size_t>(
                                  t.column_index_.at(name))]
                       .cells[row];
      if (purity.ref_depth(name) < 0) {
        cell.tag = CellTag::kImpure;
        ++t.impure_cells_;
        continue;
      }
      const Value v = m.evaluate(name, /*other=*/nullptr);
      if (v.is_bool()) {
        cell.tag = CellTag::kBool;
        cell.b = v.as_bool();
      } else if (v.is_number()) {
        cell.tag = CellTag::kNum;
        cell.num = v.as_number();
      } else if (v.is_string()) {
        cell.tag = CellTag::kStr;
        t.string_pool_.push_back(v.as_string());
        cell.str = &t.string_pool_.back();
      } else {
        cell.tag = CellTag::kUndef;
      }
    }
    if (const ExprPtr* req = m.find("requirements")) {
      const std::string key = to_string(**req);
      const auto [it, fresh] =
          group_ids.emplace(key, t.group_exprs_.size());
      if (fresh) t.group_exprs_.push_back(*req);
      t.req_group_of_row_[row] = it->second;
    }
  }

  // Pass 3: dense numeric projections for the SIMD prefilter. Only kNum
  // cells raise the mask — impure, missing, undef, bool and string cells
  // all read as "not a number" and are never prefilter-rejected.
  for (Column& col : t.columns_) {
    col.nums.assign(t.rows_, 0.0);
    col.is_num.assign(t.rows_, 0);
    for (std::size_t row = 0; row < t.rows_; ++row) {
      if (col.cells[row].tag == CellTag::kNum) {
        col.nums[row] = col.cells[row].num;
        col.is_num[row] = 1;
      }
    }
  }
  return t;
}

// --- CompiledMatcher: compilation --------------------------------------------

CompiledMatcher::CompiledMatcher(const ClassAd& request,
                                 const MachineTable& table)
    : request_(&request), table_(&table) {
  if (const ExprPtr* req = request.find("requirements")) {
    has_req_requirements_ = true;
    req_requirements_.ok =
        compile(**req, /*machine_side=*/false, 0, req_requirements_.code);
    extract_prefilter(**req);
  }
  if (const ExprPtr* rank = request.find("rank")) {
    has_req_rank_ = true;
    req_rank_.ok = compile(**rank, /*machine_side=*/false, 0, req_rank_.code);
  }
  group_requirements_.resize(table.group_count());
  for (std::size_t g = 1; g < table.group_count(); ++g) {
    group_requirements_[g].ok = compile(*table.group_requirements(g),
                                        /*machine_side=*/true, 0,
                                        group_requirements_[g].code);
  }
}

bool CompiledMatcher::fully_compiled() const noexcept {
  if (has_req_requirements_ && !req_requirements_.ok) return false;
  if (has_req_rank_ && !req_rank_.ok) return false;
  for (std::size_t g = 1; g < group_requirements_.size(); ++g) {
    if (!group_requirements_[g].ok) return false;
  }
  return true;
}

std::int32_t CompiledMatcher::add_literal(const Value& value) {
  CVal v;
  if (value.is_bool()) {
    v.tag = CVal::Tag::kBool;
    v.b = value.as_bool();
  } else if (value.is_number()) {
    v.tag = CVal::Tag::kNum;
    v.num = value.as_number();
  } else if (value.is_string()) {
    v.tag = CVal::Tag::kStr;
    literal_pool_.push_back(value.as_string());
    v.str = &literal_pool_.back();
  }
  literals_.push_back(v);
  return static_cast<std::int32_t>(literals_.size() - 1);
}

bool CompiledMatcher::compile(const Expr& expr, bool machine_side, int depth,
                              std::vector<Instr>& code) {
  if (code.size() > kMaxProgram) return false;
  switch (expr.kind) {
    case ExprKind::kLiteral:
      code.push_back({Op::kPushLiteral, add_literal(expr.literal), 0});
      return true;
    case ExprKind::kAttrRef:
      return compile_attr(expr, machine_side, depth, code);
    case ExprKind::kUnary:
      if (!compile(*expr.children[0], machine_side, depth, code)) {
        return false;
      }
      code.push_back(
          {expr.op == TokenKind::kNot ? Op::kNot : Op::kNeg, 0, 0});
      return true;
    case ExprKind::kBinary: {
      if (!compile(*expr.children[0], machine_side, depth, code) ||
          !compile(*expr.children[1], machine_side, depth, code)) {
        return false;
      }
      Op op;
      switch (expr.op) {
        case TokenKind::kAndAnd: op = Op::kAnd; break;
        case TokenKind::kOrOr: op = Op::kOr; break;
        case TokenKind::kEqEq: op = Op::kEq; break;
        case TokenKind::kNotEq: op = Op::kNe; break;
        case TokenKind::kLess: op = Op::kLt; break;
        case TokenKind::kLessEq: op = Op::kLe; break;
        case TokenKind::kGreater: op = Op::kGt; break;
        case TokenKind::kGreaterEq: op = Op::kGe; break;
        case TokenKind::kPlus: op = Op::kAdd; break;
        case TokenKind::kMinus: op = Op::kSub; break;
        case TokenKind::kStar: op = Op::kMul; break;
        case TokenKind::kSlash: op = Op::kDiv; break;
        case TokenKind::kPercent: op = Op::kMod; break;
        default: return false;  // no such binary op today
      }
      code.push_back({op, 0, 0});
      return true;
    }
    case ExprKind::kTernary:
      for (const ExprPtr& child : expr.children) {
        if (!compile(*child, machine_side, depth, code)) return false;
      }
      code.push_back({Op::kTernary, 0, 0});
      return true;
    case ExprKind::kCall: {
      for (const ExprPtr& child : expr.children) {
        if (!compile(*child, machine_side, depth, code)) return false;
      }
      Builtin id = Builtin::kUnknown;
      if (expr.name == "min") id = Builtin::kMin;
      else if (expr.name == "max") id = Builtin::kMax;
      else if (expr.name == "pow") id = Builtin::kPow;
      else if (expr.name == "floor") id = Builtin::kFloor;
      else if (expr.name == "ceil") id = Builtin::kCeil;
      else if (expr.name == "abs") id = Builtin::kAbs;
      else if (expr.name == "isUndefined") id = Builtin::kIsUndefined;
      else if (expr.name == "ifThenElse") id = Builtin::kIfThenElse;
      code.push_back({Op::kCall, static_cast<std::int32_t>(id),
                      static_cast<std::int32_t>(expr.children.size())});
      return true;
    }
  }
  return false;
}

bool CompiledMatcher::compile_attr(const Expr& expr, bool machine_side,
                                   int depth, std::vector<Instr>& code) {
  // Each inlined attribute binding is one tree lookup; cap the static
  // chain so the 64-deep dynamic limit is provably unreachable.
  if (depth >= kMaxInlineDepth) return false;

  // Inline the request's binding of `name` (the tree evaluates it with
  // self=request, other=machine — i.e. request side). Missing attributes
  // are a constant UNDEFINED.
  const auto inline_request = [&](const std::string& name) {
    const ExprPtr* found = request_->find(name);
    if (!found) {
      code.push_back({Op::kPushUndefined, 0, 0});
      return true;
    }
    return compile(**found, /*machine_side=*/false, depth + 1, code);
  };
  // Load the machine's materialized value of `name`; rows that lack the
  // attribute read UNDEFINED. A name no machine defines has no column
  // and is a constant UNDEFINED.
  const auto load_column = [&](const std::string& name) {
    const int col = table_->column_of(name);
    if (col < 0) {
      code.push_back({Op::kPushUndefined, 0, 0});
    } else {
      code.push_back({Op::kLoadColumn, col, 0});
    }
  };

  switch (expr.scope) {
    case Scope::kSelf:
      if (machine_side) {
        load_column(expr.name);
        return true;
      }
      return inline_request(expr.name);
    case Scope::kOther:
      if (machine_side) return inline_request(expr.name);
      load_column(expr.name);
      return true;
    case Scope::kBare:
      if (!machine_side) {
        // Condor order: the request (self) wins when it defines the name;
        // only then does the lookup cross to the machine.
        if (const ExprPtr* found = request_->find(expr.name)) {
          return compile(**found, /*machine_side=*/false, depth + 1, code);
        }
        load_column(expr.name);
        return true;
      }
      // Machine side: whether the machine defines the name varies per
      // row, so the branch is a runtime one — use the cell when the row
      // has the attribute, else fall into the request-side block.
      {
        const int col = table_->column_of(expr.name);
        if (col < 0) return inline_request(expr.name);
        const std::size_t patch = code.size();
        code.push_back({Op::kLoadColumnElse, col, 0});
        if (!inline_request(expr.name)) return false;
        code[patch].b = static_cast<std::int32_t>(code.size() - patch - 1);
        return true;
      }
  }
  return false;
}

// --- CompiledMatcher: SIMD prefilter -----------------------------------------

namespace {

void collect_conjuncts(const Expr& expr, std::vector<const Expr*>& out) {
  if (expr.kind == ExprKind::kBinary && expr.op == TokenKind::kAndAnd) {
    collect_conjuncts(*expr.children[0], out);
    collect_conjuncts(*expr.children[1], out);
    return;
  }
  out.push_back(&expr);
}

bool cmp_satisfies(CompiledMatcher::PrefilterCmp cmp, double v, double lit) {
  using C = CompiledMatcher::PrefilterCmp;
  switch (cmp) {
    case C::kLt: return v < lit;
    case C::kLe: return v <= lit;
    case C::kGt: return v > lit;
    case C::kGe: return v >= lit;
    case C::kEq: return v == lit;
    case C::kNe: return v != lit;
  }
  return true;
}

/// rejected[i] |= is_num[i] && !(vals[i] <cmp> lit), for i in [0, n).
void prefilter_scalar(CompiledMatcher::PrefilterCmp cmp, double lit,
                      const double* vals, const std::uint8_t* is_num,
                      std::uint8_t* rejected, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    rejected[i] |= static_cast<std::uint8_t>(
        is_num[i] != 0 && !cmp_satisfies(cmp, vals[i], lit));
  }
}

#if defined(__x86_64__) || defined(__i386__)
bool cpu_has_avx2() {
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
}

/// Same contract as prefilter_scalar, 4 doubles per compare. Ordered
/// quiet predicates: neither side can be NaN (literals are finite,
/// cells' NaN becomes UNDEFINED at materialization), so O/U is moot —
/// OQ just mirrors the scalar operators exactly.
__attribute__((target("avx2"))) void prefilter_avx2(
    CompiledMatcher::PrefilterCmp cmp, double lit, const double* vals,
    const std::uint8_t* is_num, std::uint8_t* rejected, std::size_t n) {
  using C = CompiledMatcher::PrefilterCmp;
  const __m256d vlit = _mm256_set1_pd(lit);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(vals + i);
    __m256d sat;
    switch (cmp) {
      case C::kLt: sat = _mm256_cmp_pd(v, vlit, _CMP_LT_OQ); break;
      case C::kLe: sat = _mm256_cmp_pd(v, vlit, _CMP_LE_OQ); break;
      case C::kGt: sat = _mm256_cmp_pd(v, vlit, _CMP_GT_OQ); break;
      case C::kGe: sat = _mm256_cmp_pd(v, vlit, _CMP_GE_OQ); break;
      case C::kEq: sat = _mm256_cmp_pd(v, vlit, _CMP_EQ_OQ); break;
      default: sat = _mm256_cmp_pd(v, vlit, _CMP_NEQ_OQ); break;
    }
    const int bits = _mm256_movemask_pd(sat);
    for (int lane = 0; lane < 4; ++lane) {
      const auto at = i + static_cast<std::size_t>(lane);
      rejected[at] |= static_cast<std::uint8_t>(is_num[at] &
                                                ((~bits >> lane) & 1));
    }
  }
  prefilter_scalar(cmp, lit, vals + i, is_num + i, rejected + i, n - i);
}
#endif

}  // namespace

/// Lowers top-level `&&` conjuncts of the request's requirements into
/// vectorizable `column <cmp> finite-literal` terms.
///
/// Why rejecting on a FALSE term is sound even though other conjuncts
/// may be impure or uncompilable: the scanned cell is a materialized
/// pure number, so the tree evaluates that conjunct to the same FALSE;
/// and under the tri-state `&&` a FALSE operand caps the chain's value
/// at FALSE or UNDEFINED — never TRUE — no matter what every other
/// conjunct evaluates to. Both engines define "matched" as the value
/// being boolean TRUE, so the row cannot match either way.
void CompiledMatcher::extract_prefilter(const Expr& requirements) {
  std::vector<const Expr*> conjuncts;
  collect_conjuncts(requirements, conjuncts);
  for (const Expr* conjunct : conjuncts) {
    // Reuse the full compiler for the lowering; throwaway programs may
    // append extra literals to literals_, which is harmless.
    std::vector<Instr> code;
    if (!compile(*conjunct, /*machine_side=*/false, 0, code)) continue;
    if (code.size() != 3) continue;
    PrefilterCmp cmp;
    switch (code[2].op) {
      case Op::kLt: cmp = PrefilterCmp::kLt; break;
      case Op::kLe: cmp = PrefilterCmp::kLe; break;
      case Op::kGt: cmp = PrefilterCmp::kGt; break;
      case Op::kGe: cmp = PrefilterCmp::kGe; break;
      case Op::kEq: cmp = PrefilterCmp::kEq; break;
      case Op::kNe: cmp = PrefilterCmp::kNe; break;
      default: continue;
    }
    int col = -1;
    std::int32_t literal = -1;
    if (code[0].op == Op::kLoadColumn && code[1].op == Op::kPushLiteral) {
      col = code[0].a;
      literal = code[1].a;
    } else if (code[0].op == Op::kPushLiteral &&
               code[1].op == Op::kLoadColumn) {
      col = code[1].a;
      literal = code[0].a;
      // Literal-on-left: mirror so the column leads (== and != are
      // symmetric already).
      switch (cmp) {
        case PrefilterCmp::kLt: cmp = PrefilterCmp::kGt; break;
        case PrefilterCmp::kLe: cmp = PrefilterCmp::kGe; break;
        case PrefilterCmp::kGt: cmp = PrefilterCmp::kLt; break;
        case PrefilterCmp::kGe: cmp = PrefilterCmp::kLe; break;
        default: break;
      }
    } else {
      continue;
    }
    const CVal& lit = literals_[static_cast<std::size_t>(literal)];
    // Finite numeric literals only: a NaN literal would compare false
    // where the tree yields UNDEFINED — same matched verdict, but not
    // worth reasoning about; infinities are excluded with it.
    if (lit.tag != CVal::Tag::kNum || !std::isfinite(lit.num)) continue;
    prefilter_terms_.push_back(PrefilterTerm{col, cmp, lit.num});
  }
  // Pure capacity query: every conjunct lowered. The scan's verdict is
  // then total for rows whose scanned cells are all numeric — each
  // conjunct evaluates to exactly TRUE or FALSE, so the `&&` chain is
  // TRUE iff every term is satisfied.
  prefilter_complete_ =
      !conjuncts.empty() && prefilter_terms_.size() == conjuncts.size();
}

void CompiledMatcher::apply_prefilter() {
  if (prefilter_terms_.empty()) return;
  const std::size_t n = table_->rows();
  rejected_.assign(n, 0);
  for (const PrefilterTerm& term : prefilter_terms_) {
    const double* vals = table_->numeric_values(term.col);
    const std::uint8_t* mask = table_->numeric_mask(term.col);
#if defined(__x86_64__) || defined(__i386__)
    if (simd_enabled_ && cpu_has_avx2()) {
      prefilter_avx2(term.cmp, term.literal, vals, mask, rejected_.data(),
                     n);
      continue;
    }
#endif
    prefilter_scalar(term.cmp, term.literal, vals, mask, rejected_.data(),
                     n);
  }
  if (!prefilter_complete_) return;
  // accepted = every scanned cell numeric AND no term rejected. (A row
  // with all cells numeric and no definitive FALSE has every conjunct
  // TRUE.)
  accepted_.assign(n, 1);
  for (const PrefilterTerm& term : prefilter_terms_) {
    const std::uint8_t* mask = table_->numeric_mask(term.col);
    for (std::size_t i = 0; i < n; ++i) accepted_[i] &= mask[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    accepted_[i] &= static_cast<std::uint8_t>(rejected_[i] == 0);
  }
}

// --- CompiledMatcher: evaluation ---------------------------------------------

bool CompiledMatcher::run(const Program& program, std::size_t row,
                          CVal& out) {
  using Tag = CVal::Tag;
  stack_.clear();
  arena_.clear();

  const auto undef = [] { return CVal{}; };
  const auto boolean = [](bool b) {
    CVal v;
    v.tag = Tag::kBool;
    v.b = b;
    return v;
  };
  // NaN is a domain error: UNDEFINED, exactly as the tree's numeric().
  const auto number = [&](double n) {
    if (std::isnan(n)) return undef();
    CVal v;
    v.tag = Tag::kNum;
    v.num = n;
    return v;
  };
  const auto cell_value = [&](const MachineTable::Cell& c) {
    CVal v;
    switch (c.tag) {
      case MachineTable::CellTag::kBool:
        v.tag = Tag::kBool;
        v.b = c.b;
        break;
      case MachineTable::CellTag::kNum:
        v.tag = Tag::kNum;
        v.num = c.num;
        break;
      case MachineTable::CellTag::kStr:
        v.tag = Tag::kStr;
        v.str = c.str;
        break;
      default:  // kMissing / kUndef both read as UNDEFINED
        break;
    }
    return v;
  };
  const auto pop = [&] {
    CVal v = stack_.back();
    stack_.pop_back();
    return v;
  };

  const std::vector<Instr>& code = program.code;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instr& in = code[pc];
    switch (in.op) {
      case Op::kPushLiteral:
        stack_.push_back(literals_[static_cast<std::size_t>(in.a)]);
        break;
      case Op::kPushUndefined:
        stack_.push_back(undef());
        break;
      case Op::kLoadColumn: {
        const MachineTable::Cell& c = table_->cell(in.a, row);
        if (c.tag == MachineTable::CellTag::kImpure) return false;
        stack_.push_back(cell_value(c));
        break;
      }
      case Op::kLoadColumnElse: {
        const MachineTable::Cell& c = table_->cell(in.a, row);
        if (c.tag == MachineTable::CellTag::kImpure) return false;
        if (c.tag != MachineTable::CellTag::kMissing) {
          stack_.push_back(cell_value(c));
          pc += static_cast<std::size_t>(in.b);
        }
        // else: fall into the request-side block of b instructions.
        break;
      }
      case Op::kAnd: {
        const CVal r = pop();
        const CVal l = pop();
        // Exact eager rendering of the tree's lazy table: a bool false
        // dominates either side; true && b == b; UNDEFINED survives
        // unless dominated; a non-bool operand is a type error.
        CVal res = undef();
        if (l.tag == Tag::kBool && !l.b) {
          res = boolean(false);
        } else if (l.tag == Tag::kBool && l.b) {
          if (r.tag == Tag::kBool) res = r;
        } else if (l.tag == Tag::kUndef) {
          if (r.tag == Tag::kBool && !r.b) res = boolean(false);
        }
        stack_.push_back(res);
        break;
      }
      case Op::kOr: {
        const CVal r = pop();
        const CVal l = pop();
        CVal res = undef();
        if (l.tag == Tag::kBool && l.b) {
          res = boolean(true);
        } else if (l.tag == Tag::kBool && !l.b) {
          if (r.tag == Tag::kBool) res = r;
        } else if (l.tag == Tag::kUndef) {
          if (r.tag == Tag::kBool && r.b) res = boolean(true);
        }
        stack_.push_back(res);
        break;
      }
      case Op::kNot: {
        const CVal v = pop();
        stack_.push_back(v.tag == Tag::kBool ? boolean(!v.b) : undef());
        break;
      }
      case Op::kNeg: {
        const CVal v = pop();
        stack_.push_back(v.tag == Tag::kNum ? number(-v.num) : undef());
        break;
      }
      case Op::kEq:
      case Op::kNe: {
        const CVal r = pop();
        const CVal l = pop();
        if (l.tag != r.tag || l.tag == Tag::kUndef) {
          // UNDEFINED operands and cross-type comparisons are both type
          // errors in the tree (UNDEFINED short-circuits first).
          stack_.push_back(undef());
          break;
        }
        bool eq = false;
        switch (l.tag) {
          case Tag::kBool: eq = l.b == r.b; break;
          case Tag::kNum: eq = l.num == r.num; break;
          case Tag::kStr: eq = *l.str == *r.str; break;
          default: break;
        }
        stack_.push_back(boolean(in.op == Op::kEq ? eq : !eq));
        break;
      }
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe: {
        const CVal r = pop();
        const CVal l = pop();
        int cmp = 0;
        if (l.tag == Tag::kNum && r.tag == Tag::kNum) {
          cmp = l.num < r.num ? -1 : (l.num > r.num ? 1 : 0);
        } else if (l.tag == Tag::kStr && r.tag == Tag::kStr) {
          cmp = l.str->compare(*r.str);
        } else {
          stack_.push_back(undef());
          break;
        }
        bool v = false;
        switch (in.op) {
          case Op::kLt: v = cmp < 0; break;
          case Op::kLe: v = cmp <= 0; break;
          case Op::kGt: v = cmp > 0; break;
          default: v = cmp >= 0; break;
        }
        stack_.push_back(boolean(v));
        break;
      }
      case Op::kAdd: {
        const CVal r = pop();
        const CVal l = pop();
        if (l.tag == Tag::kStr && r.tag == Tag::kStr) {
          arena_.push_back(*l.str + *r.str);
          CVal v;
          v.tag = Tag::kStr;
          v.str = &arena_.back();
          stack_.push_back(v);
        } else if (l.tag == Tag::kNum && r.tag == Tag::kNum) {
          stack_.push_back(number(l.num + r.num));
        } else {
          stack_.push_back(undef());
        }
        break;
      }
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod: {
        const CVal r = pop();
        const CVal l = pop();
        if (l.tag != Tag::kNum || r.tag != Tag::kNum) {
          stack_.push_back(undef());
          break;
        }
        switch (in.op) {
          case Op::kSub: stack_.push_back(number(l.num - r.num)); break;
          case Op::kMul: stack_.push_back(number(l.num * r.num)); break;
          case Op::kDiv:
            stack_.push_back(r.num == 0.0 ? undef()
                                          : number(l.num / r.num));
            break;
          default:
            stack_.push_back(
                r.num == 0.0 ? undef() : number(std::fmod(l.num, r.num)));
            break;
        }
        break;
      }
      case Op::kTernary: {
        const CVal else_v = pop();
        const CVal then_v = pop();
        const CVal cond = pop();
        // Both branches were (eagerly) evaluated; the language is pure
        // and depth-limit-free here, so picking late is equivalent.
        stack_.push_back(cond.tag == Tag::kBool
                             ? (cond.b ? then_v : else_v)
                             : undef());
        break;
      }
      case Op::kCall: {
        const std::size_t argc = static_cast<std::size_t>(in.b);
        const std::size_t base = stack_.size() - argc;
        const CVal* args = stack_.data() + base;
        CVal res = undef();
        const auto num2 = [&](double (*fn)(double, double)) {
          if (argc == 2 && args[0].tag == Tag::kNum &&
              args[1].tag == Tag::kNum) {
            res = number(fn(args[0].num, args[1].num));
          }
        };
        const auto num1 = [&](double (*fn)(double)) {
          if (argc == 1 && args[0].tag == Tag::kNum) {
            res = number(fn(args[0].num));
          }
        };
        switch (static_cast<Builtin>(in.a)) {
          case Builtin::kMin:
            num2([](double a, double b) { return std::min(a, b); });
            break;
          case Builtin::kMax:
            num2([](double a, double b) { return std::max(a, b); });
            break;
          case Builtin::kPow:
            num2([](double a, double b) { return std::pow(a, b); });
            break;
          case Builtin::kFloor:
            num1([](double a) { return std::floor(a); });
            break;
          case Builtin::kCeil:
            num1([](double a) { return std::ceil(a); });
            break;
          case Builtin::kAbs:
            num1([](double a) { return std::fabs(a); });
            break;
          case Builtin::kIsUndefined:
            if (argc == 1) res = boolean(args[0].tag == Tag::kUndef);
            break;
          case Builtin::kIfThenElse:
            if (argc == 3 && args[0].tag == Tag::kBool) {
              res = args[0].b ? args[1] : args[2];
            }
            break;
          case Builtin::kUnknown:
            break;  // arguments evaluated, value UNDEFINED (tree parity)
        }
        stack_.resize(base);
        stack_.push_back(res);
        break;
      }
    }
  }
  out = stack_.back();
  return true;
}

CompiledMatcher::RowResult CompiledMatcher::fallback_row(std::size_t row) {
  ++stats_.fallback_rows;
  const MatchResult m = match_ads(*request_, table_->machines()[row]);
  RowResult out;
  out.matched = m.matched;
  out.rank = m.rank_a;
  return out;
}

CompiledMatcher::RowResult CompiledMatcher::match_row(std::size_t row) {
  return evaluate_row(row, /*requirements_decided_true=*/false);
}

CompiledMatcher::RowResult CompiledMatcher::evaluate_row(
    std::size_t row, bool requirements_decided_true) {
  using Tag = CVal::Tag;
  // Same evaluation order as match_ads: request requirements, then the
  // machine's, then (only if matched) the request's rank.
  bool matched = true;
  if (has_req_requirements_ && !requirements_decided_true) {
    if (!req_requirements_.ok) return fallback_row(row);
    CVal v;
    if (!run(req_requirements_, row, v)) return fallback_row(row);
    matched = v.tag == Tag::kBool && v.b;
  }
  if (matched) {
    const std::size_t group = table_->group_of(row);
    if (group != 0) {
      const Program& p = group_requirements_[group];
      if (!p.ok) return fallback_row(row);
      CVal v;
      if (!run(p, row, v)) return fallback_row(row);
      matched = v.tag == Tag::kBool && v.b;
    }
  }
  RowResult out;
  out.matched = matched;
  if (matched && has_req_rank_) {
    if (!req_rank_.ok) return fallback_row(row);
    CVal v;
    if (!run(req_rank_, row, v)) return fallback_row(row);
    out.rank = v.tag == Tag::kNum ? v.num : 0.0;
  }
  ++stats_.compiled_rows;
  return out;
}

std::vector<std::size_t> CompiledMatcher::rank_all() {
  apply_prefilter();
  const bool prefiltered = !prefilter_terms_.empty();
  const bool decisive = prefiltered && prefilter_complete_;
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t row = 0; row < table_->rows(); ++row) {
    if (prefiltered && rejected_[row] != 0) {
      ++stats_.prefiltered_rows;
      continue;
    }
    const RowResult r = evaluate_row(row, decisive && accepted_[row] != 0);
    if (r.matched) ranked.emplace_back(r.rank, row);
  }
  // Identical ordering contract to rank_matches: descending rank, stable
  // on ties (row order).
  std::stable_sort(
      ranked.begin(), ranked.end(),
      [](const auto& x, const auto& y) { return x.first > y.first; });
  std::vector<std::size_t> out;
  out.reserve(ranked.size());
  for (const auto& [rank, row] : ranked) {
    (void)rank;
    out.push_back(row);
  }
  return out;
}

std::vector<std::size_t> rank_matches_compiled(
    const ClassAd& request, const MachineTable& table,
    CompiledMatcher::Stats* stats) {
  CompiledMatcher matcher(request, table);
  std::vector<std::size_t> out = matcher.rank_all();
  if (stats) *stats = matcher.stats();
  return out;
}

}  // namespace resmatch::match
