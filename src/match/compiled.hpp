// Compiled ClassAd matching: flat predicate bytecode over SoA machine-ad
// columns.
//
// rank_matches() tree-walks every candidate's AST per request — pointer
// chasing, shared_ptr children and std::map attribute lookups on the
// hottest path the matchmaker has. This module trades that for a
// one-time compile per (request, machine table):
//
//   MachineTable     turns a fixed set of machine ads into struct-of-
//                    arrays columns (one per attribute name) of
//                    pre-materialized values, plus a grouping of rows by
//                    distinct `requirements` source.
//   CompiledMatcher  compiles the request's requirements/rank and each
//                    machine group's requirements into a flat postfix
//                    bytecode; evaluation per row is a tight loop over a
//                    value stack with column loads instead of attribute
//                    lookups.
//
// The tree-walking evaluator stays the correctness anchor: any construct
// the compiler cannot prove equivalent falls back to match_ads() — per
// row when only a cell is unprovable, wholesale when a program is.
// rank_matches_compiled() is a drop-in for rank_matches() and returns
// bit-identical orderings (the differential fuzz in compiled_test pins
// this).
//
// What makes naive compilation WRONG, and how each hazard is handled:
//
//   * Machine attribute values can depend on the request (`other.` refs,
//     or bare refs the machine does not define, which Condor-lookup fall
//     through to the request). Such cells cannot be materialized ahead of
//     the match; they are tagged kImpure and any program load of one
//     aborts to the per-row tree fallback. The purity analysis is a
//     transitive closure over the machine ad's reference graph.
//   * The tree evaluator bounds attribute-chain recursion at depth 64,
//     yielding UNDEFINED past it. Inlining changes where that bound would
//     bite, so the compiler refuses programs with inline chains past 32
//     and the purity analysis refuses machine chains past 32: any
//     compiled evaluation therefore performs at most 64 chained lookups
//     and can never diverge from the tree on the depth limit. Reference
//     cycles blow past the caps and fall back the same way.
//   * `&&`/`||`/`?:` are lazy in the tree evaluator; the bytecode is
//     eager. The expression language is pure (no side effects) and no
//     compiled program can hit the depth limit (previous point), so
//     eager evaluation with the exact tri-state truth tables is
//     observationally identical.
//
// On top of the bytecode, rank_all() runs a SIMD prefilter: top-level
// `&&` conjuncts of the request's requirements with the shape
// `column <cmp> finite-number` are scanned vectorized (AVX2 where the
// CPU has it) over dense numeric column projections, and any row where
// such a conjunct is definitively FALSE is rejected without per-row
// evaluation. This is sound even for rows whose OTHER cells are impure:
// a materialized numeric cell evaluates identically inside the tree, and
// under the tri-state `&&` a FALSE conjunct caps the whole requirements
// at FALSE-or-UNDEFINED — never TRUE — regardless of the remaining
// conjuncts. Rows whose cell for the scanned column is anything but a
// pure number are left for full evaluation. When EVERY conjunct lowers
// to a term (the pure capacity query — the paper's common case), the
// scan also decides acceptance: a row whose scanned cells are all
// numeric and all satisfied has requirements == TRUE by construction,
// and skips per-row requirements evaluation entirely.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "match/classad.hpp"

namespace resmatch::match {

/// Struct-of-arrays view over a fixed vector of machine ads. One column
/// per attribute name occurring in any machine; each cell is the attr's
/// standalone-materialized value or a tag explaining why it has none.
/// Borrows `machines` (for row fallback) — it must outlive the table.
class MachineTable {
 public:
  enum class CellTag : std::uint8_t {
    kMissing,  ///< machine does not define the attribute
    kUndef,    ///< defined; evaluates to UNDEFINED
    kBool,
    kNum,
    kStr,
    kImpure,  ///< defined, but the value depends on the request (or the
              ///< reference chain is too deep to prove) — row fallback
  };
  struct Cell {
    CellTag tag = CellTag::kMissing;
    bool b = false;
    double num = 0.0;
    const std::string* str = nullptr;  ///< interned in the table's pool
  };

  [[nodiscard]] static MachineTable build(
      const std::vector<ClassAd>& machines);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] const std::vector<ClassAd>& machines() const noexcept {
    return *machines_;
  }
  /// Column index of an attribute name; -1 when no machine defines it.
  [[nodiscard]] int column_of(const std::string& name) const {
    const auto it = column_index_.find(name);
    return it == column_index_.end() ? -1 : it->second;
  }
  [[nodiscard]] const Cell& cell(int col, std::size_t row) const {
    return columns_[static_cast<std::size_t>(col)].cells[row];
  }

  /// Dense numeric projection of a column for vectorized scans:
  /// numeric_values(col)[row] holds the cell's number exactly where
  /// numeric_mask(col)[row] is 1 (the cell is CellTag::kNum); every
  /// other row reads 0.0 / 0. Both arrays span rows().
  [[nodiscard]] const double* numeric_values(int col) const {
    return columns_[static_cast<std::size_t>(col)].nums.data();
  }
  [[nodiscard]] const std::uint8_t* numeric_mask(int col) const {
    return columns_[static_cast<std::size_t>(col)].is_num.data();
  }

  /// Rows are grouped by distinct `requirements` source text; group 0 is
  /// "no requirements" (always accepts). One program per group serves
  /// every row of the group — per-machine variation lives in the columns.
  [[nodiscard]] std::size_t group_of(std::size_t row) const {
    return req_group_of_row_[row];
  }
  [[nodiscard]] std::size_t group_count() const noexcept {
    return group_exprs_.size();
  }
  /// The group's requirements expression (null for group 0).
  [[nodiscard]] const ExprPtr& group_requirements(std::size_t group) const {
    return group_exprs_[group];
  }

  /// Cells tagged kImpure across all columns (0 = every machine attribute
  /// materialized; any compiled program then never row-falls-back on a
  /// column load).
  [[nodiscard]] std::uint64_t impure_cells() const noexcept {
    return impure_cells_;
  }

 private:
  struct Column {
    std::string name;
    std::vector<Cell> cells;
    /// Dense SoA projection for the SIMD prefilter (see numeric_values).
    std::vector<double> nums;
    std::vector<std::uint8_t> is_num;
  };

  const std::vector<ClassAd>* machines_ = nullptr;
  std::size_t rows_ = 0;
  std::vector<Column> columns_;
  std::unordered_map<std::string, int> column_index_;
  std::vector<std::size_t> req_group_of_row_;
  std::vector<ExprPtr> group_exprs_;
  std::uint64_t impure_cells_ = 0;
  /// Stable-address storage for string cells (deque: growth never moves
  /// existing elements, so Cell::str pointers stay valid).
  std::deque<std::string> string_pool_;
};

/// One request compiled against one machine table. Not thread-safe (the
/// evaluation scratch is shared across calls); compile one per thread.
class CompiledMatcher {
 public:
  /// Compiles request.requirements, request.rank and every machine
  /// group's requirements. Both arguments are borrowed and must outlive
  /// the matcher. A program that cannot be compiled is simply marked; its
  /// rows evaluate through match_ads() instead.
  CompiledMatcher(const ClassAd& request, const MachineTable& table);

  struct RowResult {
    bool matched = false;
    double rank = 0.0;  ///< the request's rank of the row (0 if absent /
                        ///< non-numeric), as rank_matches uses it
  };
  [[nodiscard]] RowResult match_row(std::size_t row);

  /// Indices of matching rows, by descending request-rank, ties in row
  /// order — exactly rank_matches(request, table.machines()).
  [[nodiscard]] std::vector<std::size_t> rank_all();

  /// Normalized comparison of one prefilter term: `column <cmp> literal`
  /// (literal-on-left conjuncts are mirrored at extraction).
  enum class PrefilterCmp : std::uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

  /// Selects the vector (AVX2 when the CPU has it) vs scalar prefilter
  /// kernel. Results are identical either way; the toggle exists for the
  /// scalar-vs-SIMD differential test and the bench's kernel-isolated
  /// delta. On by default.
  void set_simd_enabled(bool enabled) noexcept { simd_enabled_ = enabled; }

  /// Requirements conjuncts lowered to prefilter terms (0 = every row
  /// goes through full evaluation).
  [[nodiscard]] std::size_t prefilter_term_count() const noexcept {
    return prefilter_terms_.size();
  }

  struct Stats {
    std::uint64_t compiled_rows = 0;  ///< rows served by bytecode alone
    std::uint64_t fallback_rows = 0;  ///< rows served by the tree walker
    /// Rows rejected by the numeric prefilter before any per-row
    /// evaluation (counted in neither of the other two).
    std::uint64_t prefiltered_rows = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// True when every program (request requirements/rank + all machine
  /// groups) compiled; rows can then only fall back on impure cells.
  [[nodiscard]] bool fully_compiled() const noexcept;

 private:
  enum class Op : std::uint8_t {
    kPushLiteral,     ///< a = literal index
    kPushUndefined,
    kLoadColumn,      ///< a = column; kMissing reads as UNDEFINED
    kLoadColumnElse,  ///< a = column, b = skip: when the row HAS the
                      ///< attribute push its cell and jump over the next b
                      ///< instructions; otherwise fall into them (the
                      ///< request-side binding of a machine bare ref)
    kAnd,             ///< tri-state, exact truth table of the tree's &&
    kOr,
    kNot,
    kNeg,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAdd,  ///< numbers add, strings concatenate
    kSub,
    kMul,
    kDiv,
    kMod,
    kTernary,  ///< pops else/then/cond
    kCall,     ///< a = builtin id, b = argc
  };
  enum class Builtin : std::int32_t {
    kMin,
    kMax,
    kPow,
    kFloor,
    kCeil,
    kAbs,
    kIsUndefined,
    kIfThenElse,
    kUnknown,  ///< evaluates its arguments, yields UNDEFINED (tree parity)
  };
  struct Instr {
    Op op;
    std::int32_t a = 0;
    std::int32_t b = 0;
  };
  struct CVal {
    enum class Tag : std::uint8_t { kUndef, kBool, kNum, kStr };
    Tag tag = Tag::kUndef;
    bool b = false;
    double num = 0.0;
    const std::string* str = nullptr;
  };
  struct Program {
    std::vector<Instr> code;
    bool ok = false;
  };
  /// One numeric conjunct of the request's requirements, normalized to
  /// `column <cmp> literal` with a finite literal.
  struct PrefilterTerm {
    int col = -1;
    PrefilterCmp cmp = PrefilterCmp::kLt;
    double literal = 0.0;
  };

  [[nodiscard]] bool compile(const Expr& expr, bool machine_side, int depth,
                             std::vector<Instr>& code);
  [[nodiscard]] bool compile_attr(const Expr& expr, bool machine_side,
                                  int depth, std::vector<Instr>& code);
  [[nodiscard]] std::int32_t add_literal(const Value& value);
  /// Evaluate `program` against `row`. Returns false when the evaluation
  /// touched an impure cell (caller must tree-fall-back the row).
  [[nodiscard]] bool run(const Program& program, std::size_t row,
                         CVal& out);
  [[nodiscard]] RowResult fallback_row(std::size_t row);
  /// match_row with the request-requirements verdict optionally already
  /// decided TRUE by the prefilter's accept scan.
  [[nodiscard]] RowResult evaluate_row(std::size_t row,
                                       bool requirements_decided_true);
  void extract_prefilter(const Expr& requirements);
  void apply_prefilter();

  const ClassAd* request_;
  const MachineTable* table_;
  Program req_requirements_;
  Program req_rank_;
  bool has_req_requirements_ = false;
  bool has_req_rank_ = false;
  std::vector<Program> group_requirements_;  ///< [0] unused (no reqs)
  std::vector<CVal> literals_;
  std::deque<std::string> literal_pool_;
  std::vector<PrefilterTerm> prefilter_terms_;
  /// Every requirements conjunct lowered to a term: the scan can then
  /// ACCEPT rows (all cells numeric, all terms satisfied => TRUE), not
  /// just reject them.
  bool prefilter_complete_ = false;
  std::vector<std::uint8_t> rejected_;  ///< rank_all scratch: 1 = skip row
  std::vector<std::uint8_t> accepted_;  ///< 1 = requirements decided TRUE
  bool simd_enabled_ = true;
  // Evaluation scratch, reused across rows.
  std::vector<CVal> stack_;
  std::deque<std::string> arena_;  ///< concat results live per evaluation
  Stats stats_;
};

/// Drop-in replacement for rank_matches(request, table.machines()):
/// same indices, same order, bit-identical ranks. `stats` (optional)
/// receives the compiled/fallback row split.
[[nodiscard]] std::vector<std::size_t> rank_matches_compiled(
    const ClassAd& request, const MachineTable& table,
    CompiledMatcher::Stats* stats = nullptr);

}  // namespace resmatch::match
