// ClassAd-lite: attribute sets with computed expressions and two-sided
// matchmaking, modeled on Condor's matchmaker (Raman, Livny & Solomon,
// HPDC'98) which the paper builds its resource-matching context on.
//
// A ClassAd maps attribute names to expressions (constants included).
// Matching is symmetric: ads A and B match when A.requirements evaluates
// to true against B and B.requirements evaluates to true against A.
// `rank` orders acceptable candidates.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "match/ast.hpp"
#include "match/parser.hpp"
#include "util/expected.hpp"

namespace resmatch::match {

/// Attribute set. Attribute names are case-sensitive; by convention
/// `requirements` and `rank` drive matching.
class ClassAd {
 public:
  ClassAd() = default;

  /// Set a constant attribute.
  void set(const std::string& name, Value value);

  /// Set a computed attribute from expression source. Returns false (and
  /// leaves the ad unchanged) when the source does not parse.
  bool set_expr(const std::string& name, std::string_view source);

  /// Set a pre-parsed expression.
  void set_expr(const std::string& name, ExprPtr expr);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const ExprPtr* find(const std::string& name) const;
  [[nodiscard]] std::size_t size() const noexcept { return attrs_.size(); }

  /// Evaluate attribute `name` with `other` as the counterpart ad (may be
  /// null for standalone evaluation). Missing attributes yield UNDEFINED.
  [[nodiscard]] Value evaluate(const std::string& name,
                               const ClassAd* other = nullptr) const;

  /// Attribute names, sorted (deterministic serialization order).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Render as "[ name = expr; ... ]".
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, ExprPtr> attrs_;
};

/// Evaluate an arbitrary expression with self/other ads in scope.
/// Depth-limited: runaway self-referential attribute chains evaluate to
/// UNDEFINED instead of recursing forever.
[[nodiscard]] Value evaluate(const Expr& expr, const ClassAd* self,
                             const ClassAd* other);

/// Result of a two-sided match attempt.
struct MatchResult {
  bool matched = false;
  /// Ranks as evaluated (0 when `rank` is absent or non-numeric).
  double rank_a = 0.0;  ///< a's rank of b
  double rank_b = 0.0;  ///< b's rank of a
};

/// Symmetric match per Condor semantics: both `requirements` must
/// evaluate to boolean true (UNDEFINED and non-boolean values reject).
/// An ad without `requirements` accepts anything.
[[nodiscard]] MatchResult match_ads(const ClassAd& a, const ClassAd& b);

/// Among `candidates`, return indices of those matching `request`, sorted
/// by the request's rank of the candidate, descending (ties keep input
/// order). The one-to-one matchmaking primitive.
[[nodiscard]] std::vector<std::size_t> rank_matches(
    const ClassAd& request, const std::vector<ClassAd>& candidates);

}  // namespace resmatch::match
