#include "match/classad.hpp"

#include <algorithm>
#include <cmath>

namespace resmatch::match {

namespace {

/// Evaluation context threaded through the recursion. The depth limit
/// bounds attribute-chain recursion (including mutual references between
/// the two ads), turning cycles into UNDEFINED.
struct EvalContext {
  const ClassAd* self = nullptr;
  const ClassAd* other = nullptr;
  int depth = 0;
  static constexpr int kMaxDepth = 64;
};

Value eval(const Expr& expr, EvalContext ctx);

Value eval_attr(const Expr& expr, EvalContext ctx) {
  if (ctx.depth >= EvalContext::kMaxDepth) return Undefined{};
  ++ctx.depth;
  auto lookup = [&](const ClassAd* ad, const ClassAd* counterpart) -> std::optional<Value> {
    if (!ad) return std::nullopt;
    const ExprPtr* found = ad->find(expr.name);
    if (!found) return std::nullopt;
    EvalContext inner = ctx;
    inner.self = ad;
    inner.other = counterpart;
    return eval(**found, inner);
  };
  switch (expr.scope) {
    case Scope::kSelf: {
      auto v = lookup(ctx.self, ctx.other);
      return v ? *v : Value(Undefined{});
    }
    case Scope::kOther: {
      auto v = lookup(ctx.other, ctx.self);
      return v ? *v : Value(Undefined{});
    }
    case Scope::kBare: {
      // Condor lookup order: the referencing ad first, then the target.
      if (auto v = lookup(ctx.self, ctx.other)) return *v;
      if (auto v = lookup(ctx.other, ctx.self)) return *v;
      return Undefined{};
    }
  }
  return Undefined{};
}

Value eval_unary(const Expr& expr, EvalContext ctx) {
  const Value v = eval(*expr.children[0], ctx);
  if (expr.op == TokenKind::kNot) {
    if (v.is_bool()) return !v.as_bool();
    return Undefined{};
  }
  // Unary minus.
  if (v.is_number()) return -v.as_number();
  return Undefined{};
}

Value eval_binary(const Expr& expr, EvalContext ctx) {
  const TokenKind op = expr.op;

  // Lazy boolean operators: false/true can dominate an UNDEFINED side.
  if (op == TokenKind::kAndAnd || op == TokenKind::kOrOr) {
    const Value lhs = eval(*expr.children[0], ctx);
    if (lhs.is_bool()) {
      if (op == TokenKind::kAndAnd && !lhs.as_bool()) return false;
      if (op == TokenKind::kOrOr && lhs.as_bool()) return true;
    } else if (!lhs.is_undefined()) {
      return Undefined{};  // non-boolean operand is a type error
    }
    const Value rhs = eval(*expr.children[1], ctx);
    if (rhs.is_bool()) {
      if (op == TokenKind::kAndAnd && !rhs.as_bool()) return false;
      if (op == TokenKind::kOrOr && rhs.as_bool()) return true;
      // rhs is the neutral element; result hinges on lhs.
      if (lhs.is_bool()) return lhs.as_bool();
    }
    return Undefined{};
  }

  const Value lhs = eval(*expr.children[0], ctx);
  const Value rhs = eval(*expr.children[1], ctx);
  if (lhs.is_undefined() || rhs.is_undefined()) return Undefined{};

  // Equality works within any single type.
  if (op == TokenKind::kEqEq || op == TokenKind::kNotEq) {
    const bool eq = lhs.equals(rhs);
    // Cross-type comparison is a type error, not `false`.
    const bool same_type = (lhs.is_bool() && rhs.is_bool()) ||
                           (lhs.is_number() && rhs.is_number()) ||
                           (lhs.is_string() && rhs.is_string());
    if (!same_type) return Undefined{};
    return op == TokenKind::kEqEq ? eq : !eq;
  }

  // Relational: numbers or strings (lexicographic).
  if (op == TokenKind::kLess || op == TokenKind::kLessEq ||
      op == TokenKind::kGreater || op == TokenKind::kGreaterEq) {
    int cmp = 0;
    if (lhs.is_number() && rhs.is_number()) {
      cmp = lhs.as_number() < rhs.as_number()
                ? -1
                : (lhs.as_number() > rhs.as_number() ? 1 : 0);
    } else if (lhs.is_string() && rhs.is_string()) {
      cmp = lhs.as_string().compare(rhs.as_string());
    } else {
      return Undefined{};
    }
    switch (op) {
      case TokenKind::kLess: return cmp < 0;
      case TokenKind::kLessEq: return cmp <= 0;
      case TokenKind::kGreater: return cmp > 0;
      default: return cmp >= 0;
    }
  }

  // Arithmetic: numbers only, except '+' which concatenates strings.
  if (op == TokenKind::kPlus && lhs.is_string() && rhs.is_string()) {
    return lhs.as_string() + rhs.as_string();
  }
  if (!lhs.is_number() || !rhs.is_number()) return Undefined{};
  const double a = lhs.as_number();
  const double b = rhs.as_number();
  // NaN is a domain error (inf - inf, 0 * inf, ...): surface it as
  // UNDEFINED so downstream logic keeps ClassAd tri-state semantics.
  auto numeric = [](double r) {
    return std::isnan(r) ? Value(Undefined{}) : Value(r);
  };
  switch (op) {
    case TokenKind::kPlus: return numeric(a + b);
    case TokenKind::kMinus: return numeric(a - b);
    case TokenKind::kStar: return numeric(a * b);
    case TokenKind::kSlash:
      return b == 0.0 ? Value(Undefined{}) : numeric(a / b);
    case TokenKind::kPercent:
      return b == 0.0 ? Value(Undefined{}) : numeric(std::fmod(a, b));
    default: return Undefined{};
  }
}

Value eval_call(const Expr& expr, EvalContext ctx) {
  std::vector<Value> args;
  args.reserve(expr.children.size());
  for (const auto& child : expr.children) args.push_back(eval(*child, ctx));

  auto numeric = [](double r) {
    return std::isnan(r) ? Value(Undefined{}) : Value(r);
  };
  auto num2 = [&](double (*fn)(double, double)) -> Value {
    if (args.size() != 2 || !args[0].is_number() || !args[1].is_number()) {
      return Undefined{};
    }
    return numeric(fn(args[0].as_number(), args[1].as_number()));
  };
  auto num1 = [&](double (*fn)(double)) -> Value {
    if (args.size() != 1 || !args[0].is_number()) return Undefined{};
    return numeric(fn(args[0].as_number()));
  };

  const std::string& fn = expr.name;
  if (fn == "min") return num2([](double a, double b) { return std::min(a, b); });
  if (fn == "max") return num2([](double a, double b) { return std::max(a, b); });
  if (fn == "pow") return num2([](double a, double b) { return std::pow(a, b); });
  if (fn == "floor") return num1([](double a) { return std::floor(a); });
  if (fn == "ceil") return num1([](double a) { return std::ceil(a); });
  if (fn == "abs") return num1([](double a) { return std::fabs(a); });
  if (fn == "isUndefined") {
    if (args.size() != 1) return Undefined{};
    return args[0].is_undefined();
  }
  if (fn == "ifThenElse") {
    if (args.size() != 3 || !args[0].is_bool()) return Undefined{};
    return args[0].as_bool() ? args[1] : args[2];
  }
  return Undefined{};  // unknown function
}

Value eval(const Expr& expr, EvalContext ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral: return expr.literal;
    case ExprKind::kAttrRef: return eval_attr(expr, ctx);
    case ExprKind::kUnary: return eval_unary(expr, ctx);
    case ExprKind::kBinary: return eval_binary(expr, ctx);
    case ExprKind::kTernary: {
      const Value cond = eval(*expr.children[0], ctx);
      if (!cond.is_bool()) return Undefined{};
      return eval(*expr.children[cond.as_bool() ? 1 : 2], ctx);
    }
    case ExprKind::kCall: return eval_call(expr, ctx);
  }
  return Undefined{};
}

}  // namespace

void ClassAd::set(const std::string& name, Value value) {
  attrs_[name] = Expr::make_literal(std::move(value));
}

bool ClassAd::set_expr(const std::string& name, std::string_view source) {
  auto parsed = parse_expression(source);
  if (!parsed) return false;
  attrs_[name] = std::move(parsed).value();
  return true;
}

void ClassAd::set_expr(const std::string& name, ExprPtr expr) {
  attrs_[name] = std::move(expr);
}

bool ClassAd::has(const std::string& name) const {
  return attrs_.count(name) > 0;
}

const ExprPtr* ClassAd::find(const std::string& name) const {
  const auto it = attrs_.find(name);
  return it == attrs_.end() ? nullptr : &it->second;
}

Value ClassAd::evaluate(const std::string& name, const ClassAd* other) const {
  const ExprPtr* expr = find(name);
  if (!expr) return Undefined{};
  EvalContext ctx;
  ctx.self = this;
  ctx.other = other;
  return eval(**expr, ctx);
}

std::vector<std::string> ClassAd::names() const {
  std::vector<std::string> out;
  out.reserve(attrs_.size());
  for (const auto& [name, expr] : attrs_) {
    (void)expr;
    out.push_back(name);
  }
  return out;
}

std::string ClassAd::to_string() const {
  std::string out = "[ ";
  for (const auto& [name, expr] : attrs_) {
    out += name + " = " + match::to_string(*expr) + "; ";
  }
  out += "]";
  return out;
}

Value evaluate(const Expr& expr, const ClassAd* self, const ClassAd* other) {
  EvalContext ctx;
  ctx.self = self;
  ctx.other = other;
  return eval(expr, ctx);
}

MatchResult match_ads(const ClassAd& a, const ClassAd& b) {
  MatchResult result;
  auto requirement_ok = [](const ClassAd& self, const ClassAd& other) {
    if (!self.has("requirements")) return true;
    const Value v = self.evaluate("requirements", &other);
    return v.is_bool() && v.as_bool();
  };
  result.matched = requirement_ok(a, b) && requirement_ok(b, a);
  if (result.matched) {
    const Value ra = a.evaluate("rank", &b);
    const Value rb = b.evaluate("rank", &a);
    result.rank_a = ra.is_number() ? ra.as_number() : 0.0;
    result.rank_b = rb.is_number() ? rb.as_number() : 0.0;
  }
  return result;
}

std::vector<std::size_t> rank_matches(const ClassAd& request,
                                      const std::vector<ClassAd>& candidates) {
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const MatchResult m = match_ads(request, candidates[i]);
    if (m.matched) ranked.emplace_back(m.rank_a, i);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& x, const auto& y) { return x.first > y.first; });
  std::vector<std::size_t> out;
  out.reserve(ranked.size());
  for (const auto& [rank, idx] : ranked) {
    (void)rank;
    out.push_back(idx);
  }
  return out;
}

}  // namespace resmatch::match
