// Recursive-descent parser for ClassAd-lite expressions.
//
// Grammar (lowest to highest precedence):
//   ternary    := or ('?' ternary ':' ternary)?
//   or         := and ('||' and)*
//   and        := equality ('&&' equality)*
//   equality   := relational (('==' | '!=') relational)*
//   relational := additive (('<' | '<=' | '>' | '>=') additive)*
//   additive   := multiplicative (('+' | '-') multiplicative)*
//   multiplicative := unary (('*' | '/' | '%') unary)*
//   unary      := ('!' | '-') unary | primary
//   primary    := NUMBER | STRING | 'true' | 'false' | 'undefined'
//               | IDENT '(' args ')'           -- builtin call
//               | ('my' | 'other' | 'target') '.' IDENT
//               | IDENT
//               | '(' ternary ')'
#pragma once

#include <string_view>

#include "match/ast.hpp"
#include "util/expected.hpp"

namespace resmatch::match {

/// Parse a complete expression; trailing tokens are an error.
[[nodiscard]] util::Expected<ExprPtr> parse_expression(std::string_view source);

}  // namespace resmatch::match
