// Gang matching: one-to-many co-allocation of a set of ads.
//
// The paper's context (§1.2) includes resource selection frameworks that
// co-match a job with MULTIPLE heterogeneous resources under global and
// aggregation constraints (Liu et al. HPDC'02) and Condor's gangmatching
// (Raman et al. HPDC'03). This module provides that primitive on top of
// ClassAd-lite: find an injective assignment of gang members to machines
// such that every pairwise requirements check passes and user-supplied
// aggregate constraints (total memory, same grid domain, ...) hold.
//
// The search is exact backtracking over members in order, trying machines
// in the member's rank order. Gangs are small (a job's handful of roles),
// so exactness is affordable; a step budget guards pathological inputs.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "match/classad.hpp"

namespace resmatch::match {

/// Aggregate predicate over a full assignment: receives the chosen
/// machine index for each gang member (in member order).
using AggregateConstraint =
    std::function<bool(const std::vector<std::size_t>& machine_indices)>;

struct GangMatchOptions {
  /// Optional prefix pruner: called on partial assignments; returning
  /// false abandons the branch. Must be monotone (false stays false as
  /// the assignment grows) for the search to remain exact.
  std::function<bool(const std::vector<std::size_t>& partial)> prefix_ok;
  /// Final aggregate check on complete assignments.
  AggregateConstraint aggregate;
  /// Backtracking step budget (candidate trials) before giving up.
  std::size_t max_steps = 100000;
};

struct GangMatchResult {
  bool matched = false;
  bool budget_exhausted = false;
  /// machine index per gang member, valid when matched.
  std::vector<std::size_t> assignment;
  std::size_t steps = 0;
};

/// Co-match `members` against `machines` (each machine used at most once).
[[nodiscard]] GangMatchResult gang_match(const std::vector<ClassAd>& members,
                                         const std::vector<ClassAd>& machines,
                                         const GangMatchOptions& options = {});

/// Aggregate helper: sum of a numeric machine attribute over the
/// assignment must reach `minimum` (e.g., total memory across the gang).
[[nodiscard]] AggregateConstraint total_at_least(
    const std::vector<ClassAd>& machines, const std::string& attribute,
    double minimum);

/// Aggregate helper: a machine attribute must be identical across the
/// whole assignment (e.g., all machines in the same grid domain).
[[nodiscard]] AggregateConstraint all_equal(
    const std::vector<ClassAd>& machines, const std::string& attribute);

}  // namespace resmatch::match
