#include "match/parser.hpp"

#include <utility>

#include "util/strings.hpp"

namespace resmatch::match {

ExprPtr Expr::make_literal(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::make_attr(std::string attr_name, Scope attr_scope) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAttrRef;
  e->name = std::move(attr_name);
  e->scope = attr_scope;
  return e;
}

ExprPtr Expr::make_unary(TokenKind op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->op = op;
  e->children = {std::move(operand)};
  return e;
}

ExprPtr Expr::make_binary(TokenKind op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::make_ternary(ExprPtr cond, ExprPtr then_e, ExprPtr else_e) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kTernary;
  e->children = {std::move(cond), std::move(then_e), std::move(else_e)};
  return e;
}

ExprPtr Expr::make_call(std::string fn, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCall;
  e->name = std::move(fn);
  e->children = std::move(args);
  return e;
}

namespace {

const char* op_text(TokenKind op) {
  switch (op) {
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kLess: return "<";
    case TokenKind::kLessEq: return "<=";
    case TokenKind::kGreater: return ">";
    case TokenKind::kGreaterEq: return ">=";
    case TokenKind::kEqEq: return "==";
    case TokenKind::kNotEq: return "!=";
    case TokenKind::kAndAnd: return "&&";
    case TokenKind::kOrOr: return "||";
    case TokenKind::kNot: return "!";
    default: return "?";
  }
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  util::Expected<ExprPtr> run() {
    auto expr = ternary();
    if (!expr) return expr;
    if (peek().kind != TokenKind::kEnd) {
      return fail("unexpected trailing input");
    }
    return expr;
  }

 private:
  using Result = util::Expected<ExprPtr>;

  const Token& peek() const { return tokens_[pos_]; }
  Token take() { return tokens_[pos_++]; }
  bool accept(TokenKind kind) {
    if (peek().kind != kind) return false;
    ++pos_;
    return true;
  }
  Result fail(const std::string& what) const {
    return Result::failure(util::format("parse error at offset %zu: %s (got %s)",
                                        peek().offset, what.c_str(),
                                        token_kind_name(peek().kind)));
  }

  Result ternary() {
    auto cond = parse_or();
    if (!cond) return cond;
    if (!accept(TokenKind::kQuestion)) return cond;
    auto then_e = ternary();
    if (!then_e) return then_e;
    if (!accept(TokenKind::kColon)) return fail("expected ':'");
    auto else_e = ternary();
    if (!else_e) return else_e;
    return Result(Expr::make_ternary(std::move(cond).value(),
                                     std::move(then_e).value(),
                                     std::move(else_e).value()));
  }

  Result parse_or() { return binary_chain(&Parser::parse_and, {TokenKind::kOrOr}); }
  Result parse_and() {
    return binary_chain(&Parser::equality, {TokenKind::kAndAnd});
  }
  Result equality() {
    return binary_chain(&Parser::relational,
                        {TokenKind::kEqEq, TokenKind::kNotEq});
  }
  Result relational() {
    return binary_chain(&Parser::additive,
                        {TokenKind::kLess, TokenKind::kLessEq,
                         TokenKind::kGreater, TokenKind::kGreaterEq});
  }
  Result additive() {
    return binary_chain(&Parser::multiplicative,
                        {TokenKind::kPlus, TokenKind::kMinus});
  }
  Result multiplicative() {
    return binary_chain(&Parser::unary, {TokenKind::kStar, TokenKind::kSlash,
                                         TokenKind::kPercent});
  }

  Result binary_chain(Result (Parser::*next)(),
                      std::initializer_list<TokenKind> ops) {
    auto lhs = (this->*next)();
    if (!lhs) return lhs;
    ExprPtr acc = std::move(lhs).value();
    for (;;) {
      bool matched = false;
      for (TokenKind op : ops) {
        if (peek().kind == op) {
          take();
          auto rhs = (this->*next)();
          if (!rhs) return rhs;
          acc = Expr::make_binary(op, std::move(acc), std::move(rhs).value());
          matched = true;
          break;
        }
      }
      if (!matched) return Result(std::move(acc));
    }
  }

  Result unary() {
    if (peek().kind == TokenKind::kNot || peek().kind == TokenKind::kMinus) {
      const TokenKind op = take().kind;
      auto operand = unary();
      if (!operand) return operand;
      return Result(Expr::make_unary(op, std::move(operand).value()));
    }
    return primary();
  }

  Result primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kNumber: {
        const double v = take().number;
        return Result(Expr::make_literal(Value(v)));
      }
      case TokenKind::kString:
        return Result(Expr::make_literal(Value(take().text)));
      case TokenKind::kLParen: {
        take();
        auto inner = ternary();
        if (!inner) return inner;
        if (!accept(TokenKind::kRParen)) return fail("expected ')'");
        return inner;
      }
      case TokenKind::kIdentifier:
        return identifier();
      default:
        return fail("expected expression");
    }
  }

  Result identifier() {
    const Token tok = take();
    const std::string& name = tok.text;
    if (name == "true") return Result(Expr::make_literal(Value(true)));
    if (name == "false") return Result(Expr::make_literal(Value(false)));
    if (name == "undefined") {
      return Result(Expr::make_literal(Value(Undefined{})));
    }
    // Scoped reference: my.attr / other.attr / target.attr.
    if (peek().kind == TokenKind::kDot &&
        (name == "my" || name == "other" || name == "target")) {
      take();  // '.'
      if (peek().kind != TokenKind::kIdentifier) {
        return fail("expected attribute name after '.'");
      }
      const Scope scope = name == "my" ? Scope::kSelf : Scope::kOther;
      return Result(Expr::make_attr(take().text, scope));
    }
    // Builtin call.
    if (peek().kind == TokenKind::kLParen) {
      take();
      std::vector<ExprPtr> args;
      if (peek().kind != TokenKind::kRParen) {
        for (;;) {
          auto arg = ternary();
          if (!arg) return arg;
          args.push_back(std::move(arg).value());
          if (!accept(TokenKind::kComma)) break;
        }
      }
      if (!accept(TokenKind::kRParen)) return fail("expected ')'");
      return Result(Expr::make_call(name, std::move(args)));
    }
    return Result(Expr::make_attr(name, Scope::kBare));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Expected<ExprPtr> parse_expression(std::string_view source) {
  auto tokens = tokenize(source);
  if (!tokens) return util::Expected<ExprPtr>::failure(tokens.error());
  return Parser(std::move(tokens).value()).run();
}

std::string to_string(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal.to_string();
    case ExprKind::kAttrRef:
      switch (expr.scope) {
        case Scope::kBare: return expr.name;
        case Scope::kSelf: return "my." + expr.name;
        case Scope::kOther: return "other." + expr.name;
      }
      return expr.name;
    case ExprKind::kUnary:
      return std::string(op_text(expr.op)) + "(" +
             to_string(*expr.children[0]) + ")";
    case ExprKind::kBinary:
      return "(" + to_string(*expr.children[0]) + " " + op_text(expr.op) +
             " " + to_string(*expr.children[1]) + ")";
    case ExprKind::kTernary:
      return "(" + to_string(*expr.children[0]) + " ? " +
             to_string(*expr.children[1]) + " : " +
             to_string(*expr.children[2]) + ")";
    case ExprKind::kCall: {
      std::string out = expr.name + "(";
      for (std::size_t i = 0; i < expr.children.size(); ++i) {
        if (i) out += ", ";
        out += to_string(*expr.children[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace resmatch::match
