// Values of the ClassAd-lite expression language.
//
// The matchmaking substrate follows Condor's ClassAd semantics in
// miniature: values are booleans, numbers, strings, or UNDEFINED, and
// UNDEFINED propagates through strict operators while the lazy boolean
// operators can absorb it (`true || undefined` is true). That tri-state
// logic is what lets a job requirement mention an attribute a machine
// simply doesn't define.
#pragma once

#include <string>
#include <variant>

namespace resmatch::match {

/// The UNDEFINED value (attribute not present / type error).
struct Undefined {
  bool operator==(const Undefined&) const = default;
};

/// A ClassAd-lite runtime value.
class Value {
 public:
  Value() : v_(Undefined{}) {}
  /*implicit*/ Value(bool b) : v_(b) {}
  /*implicit*/ Value(double d) : v_(d) {}
  /*implicit*/ Value(int d) : v_(static_cast<double>(d)) {}
  /*implicit*/ Value(std::string s) : v_(std::move(s)) {}
  /*implicit*/ Value(const char* s) : v_(std::string(s)) {}
  /*implicit*/ Value(Undefined u) : v_(u) {}

  [[nodiscard]] bool is_undefined() const noexcept {
    return std::holds_alternative<Undefined>(v_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(v_);
  }

  /// Checked accessors; behaviour is undefined if the type is wrong
  /// (callers test first).
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] double as_number() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }

  /// Strict equality: UNDEFINED is equal only to UNDEFINED; bool/number/
  /// string compare within their own type, cross-type is false.
  [[nodiscard]] bool equals(const Value& other) const noexcept;

  /// Render for diagnostics ("undefined", "true", "42", "\"abc\"").
  [[nodiscard]] std::string to_string() const;

 private:
  std::variant<Undefined, bool, double, std::string> v_;
};

}  // namespace resmatch::match
