// Expression AST for the ClassAd-lite language.
//
// Nodes are immutable and shared; an ad's attribute expressions can be
// evaluated concurrently against many candidate ads without copying.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "match/lexer.hpp"
#include "match/value.hpp"

namespace resmatch::match {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind {
  kLiteral,   ///< constant Value
  kAttrRef,   ///< bare / my. / other. attribute reference
  kUnary,     ///< ! or unary -
  kBinary,    ///< arithmetic, comparison, boolean
  kTernary,   ///< cond ? a : b
  kCall,      ///< builtin function call
};

/// Which ad an attribute reference resolves against.
enum class Scope {
  kBare,   ///< self first, then the other ad (Condor lookup order)
  kSelf,   ///< my.attr
  kOther,  ///< other.attr / target.attr
};

struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  Value literal;            ///< kLiteral
  std::string name;         ///< kAttrRef: attribute; kCall: function name
  Scope scope = Scope::kBare;  ///< kAttrRef
  TokenKind op = TokenKind::kEnd;  ///< kUnary / kBinary operator
  std::vector<ExprPtr> children;   ///< operands / call arguments

  static ExprPtr make_literal(Value v);
  static ExprPtr make_attr(std::string attr_name, Scope attr_scope);
  static ExprPtr make_unary(TokenKind op, ExprPtr operand);
  static ExprPtr make_binary(TokenKind op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr make_ternary(ExprPtr cond, ExprPtr then_e, ExprPtr else_e);
  static ExprPtr make_call(std::string fn, std::vector<ExprPtr> args);
};

/// Render an expression back to (normalized) source text.
[[nodiscard]] std::string to_string(const Expr& expr);

}  // namespace resmatch::match
