#include "match/lexer.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace resmatch::match {

const char* token_kind_name(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kNotEq: return "'!='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kNot: return "'!'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

util::Expected<std::vector<Token>> tokenize(std::string_view src) {
  using Result = util::Expected<std::vector<Token>>;
  std::vector<Token> tokens;
  std::size_t i = 0;

  auto push = [&](TokenKind kind, std::size_t at, std::string text = {}) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.offset = at;
    tokens.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t end = i;
      while (end < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[end])) ||
              src[end] == '.' || src[end] == 'e' || src[end] == 'E' ||
              ((src[end] == '+' || src[end] == '-') && end > i &&
               (src[end - 1] == 'e' || src[end - 1] == 'E')))) {
        ++end;
      }
      const auto parsed = util::parse_double(src.substr(i, end - i));
      if (!parsed) {
        return Result::failure(
            util::format("malformed number at offset %zu", i));
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.number = *parsed;
      t.offset = start;
      tokens.push_back(std::move(t));
      i = end;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = i;
      while (end < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[end])) ||
              src[end] == '_')) {
        ++end;
      }
      push(TokenKind::kIdentifier, start,
           std::string(src.substr(i, end - i)));
      i = end;
      continue;
    }
    if (c == '"') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < src.size()) {
        if (src[i] == '\\' && i + 1 < src.size()) {
          text += src[i + 1];
          i += 2;
          continue;
        }
        if (src[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        text += src[i++];
      }
      if (!closed) {
        return Result::failure(
            util::format("unterminated string at offset %zu", start));
      }
      push(TokenKind::kString, start, std::move(text));
      continue;
    }

    auto two = [&](char next) {
      return i + 1 < src.size() && src[i + 1] == next;
    };
    switch (c) {
      case '.': push(TokenKind::kDot, start); ++i; break;
      case '+': push(TokenKind::kPlus, start); ++i; break;
      case '-': push(TokenKind::kMinus, start); ++i; break;
      case '*': push(TokenKind::kStar, start); ++i; break;
      case '/': push(TokenKind::kSlash, start); ++i; break;
      case '%': push(TokenKind::kPercent, start); ++i; break;
      case '(': push(TokenKind::kLParen, start); ++i; break;
      case ')': push(TokenKind::kRParen, start); ++i; break;
      case ',': push(TokenKind::kComma, start); ++i; break;
      case '?': push(TokenKind::kQuestion, start); ++i; break;
      case ':': push(TokenKind::kColon, start); ++i; break;
      case '<':
        if (two('=')) { push(TokenKind::kLessEq, start); i += 2; }
        else { push(TokenKind::kLess, start); ++i; }
        break;
      case '>':
        if (two('=')) { push(TokenKind::kGreaterEq, start); i += 2; }
        else { push(TokenKind::kGreater, start); ++i; }
        break;
      case '=':
        if (two('=')) { push(TokenKind::kEqEq, start); i += 2; }
        else {
          return Result::failure(
              util::format("unexpected '=' at offset %zu (use ==)", start));
        }
        break;
      case '!':
        if (two('=')) { push(TokenKind::kNotEq, start); i += 2; }
        else { push(TokenKind::kNot, start); ++i; }
        break;
      case '&':
        if (two('&')) { push(TokenKind::kAndAnd, start); i += 2; }
        else {
          return Result::failure(
              util::format("unexpected '&' at offset %zu (use &&)", start));
        }
        break;
      case '|':
        if (two('|')) { push(TokenKind::kOrOr, start); i += 2; }
        else {
          return Result::failure(
              util::format("unexpected '|' at offset %zu (use ||)", start));
        }
        break;
      default:
        return Result::failure(
            util::format("unexpected character '%c' at offset %zu", c, start));
    }
  }
  push(TokenKind::kEnd, src.size());
  return tokens;
}

}  // namespace resmatch::match
