// Tokenizer for the ClassAd-lite expression language.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/expected.hpp"

namespace resmatch::match {

enum class TokenKind {
  kNumber,
  kString,
  kIdentifier,  // includes keywords true/false/undefined, resolved in parser
  kDot,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kEqEq,
  kNotEq,
  kAndAnd,
  kOrOr,
  kNot,
  kLParen,
  kRParen,
  kComma,
  kQuestion,
  kColon,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      ///< identifier name or string contents
  double number = 0.0;   ///< for kNumber
  std::size_t offset = 0;  ///< byte offset in the source, for diagnostics
};

/// Tokenize a full expression. Returns an error with position info on any
/// unrecognized character or unterminated string.
[[nodiscard]] util::Expected<std::vector<Token>> tokenize(
    std::string_view source);

/// Name of a token kind, for error messages.
[[nodiscard]] const char* token_kind_name(TokenKind kind) noexcept;

}  // namespace resmatch::match
