#include "match/value.hpp"

#include "util/strings.hpp"

namespace resmatch::match {

bool Value::equals(const Value& other) const noexcept {
  if (is_undefined() || other.is_undefined()) {
    return is_undefined() && other.is_undefined();
  }
  if (is_bool() && other.is_bool()) return as_bool() == other.as_bool();
  if (is_number() && other.is_number()) {
    return as_number() == other.as_number();
  }
  if (is_string() && other.is_string()) {
    return as_string() == other.as_string();
  }
  return false;
}

std::string Value::to_string() const {
  if (is_undefined()) return "undefined";
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_number()) return util::format_number(as_number(), 6);
  return "\"" + as_string() + "\"";
}

}  // namespace resmatch::match
