#include "match/gangmatch.hpp"

#include <algorithm>

namespace resmatch::match {

namespace {

/// Depth-first search state.
struct Search {
  const std::vector<ClassAd>& members;
  const std::vector<ClassAd>& machines;
  const GangMatchOptions& options;
  std::vector<std::vector<std::size_t>> candidates;  // per member, ranked
  std::vector<bool> used;
  std::vector<std::size_t> assignment;
  std::size_t steps = 0;
  bool exhausted = false;

  bool solve(std::size_t member) {
    if (member == members.size()) {
      return !options.aggregate || options.aggregate(assignment);
    }
    for (const std::size_t machine : candidates[member]) {
      if (used[machine]) continue;
      if (++steps > options.max_steps) {
        exhausted = true;
        return false;
      }
      used[machine] = true;
      assignment.push_back(machine);
      const bool prefix_ok =
          !options.prefix_ok || options.prefix_ok(assignment);
      if (prefix_ok && solve(member + 1)) return true;
      assignment.pop_back();
      used[machine] = false;
      if (exhausted) return false;
    }
    return false;
  }
};

}  // namespace

GangMatchResult gang_match(const std::vector<ClassAd>& members,
                           const std::vector<ClassAd>& machines,
                           const GangMatchOptions& options) {
  GangMatchResult result;
  if (members.empty()) {
    result.matched = !options.aggregate || options.aggregate({});
    return result;
  }
  if (members.size() > machines.size()) return result;

  Search search{members, machines, options, {}, {}, {}, 0, false};
  search.candidates.reserve(members.size());
  for (const auto& member : members) {
    auto ranked = rank_matches(member, machines);
    if (ranked.empty()) return result;  // some member matches nothing
    search.candidates.push_back(std::move(ranked));
  }
  search.used.assign(machines.size(), false);
  search.assignment.reserve(members.size());

  result.matched = search.solve(0);
  result.budget_exhausted = search.exhausted;
  result.steps = search.steps;
  if (result.matched) result.assignment = search.assignment;
  return result;
}

AggregateConstraint total_at_least(const std::vector<ClassAd>& machines,
                                   const std::string& attribute,
                                   double minimum) {
  return [&machines, attribute, minimum](
             const std::vector<std::size_t>& assignment) {
    double total = 0.0;
    for (const std::size_t index : assignment) {
      const Value v = machines[index].evaluate(attribute);
      if (!v.is_number()) return false;
      total += v.as_number();
    }
    return total >= minimum;
  };
}

AggregateConstraint all_equal(const std::vector<ClassAd>& machines,
                              const std::string& attribute) {
  return [&machines, attribute](const std::vector<std::size_t>& assignment) {
    for (std::size_t i = 1; i < assignment.size(); ++i) {
      const Value a = machines[assignment[0]].evaluate(attribute);
      const Value b = machines[assignment[i]].evaluate(attribute);
      if (a.is_undefined() || !a.equals(b)) return false;
    }
    return true;
  };
}

}  // namespace resmatch::match
