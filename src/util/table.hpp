// Aligned console tables for experiment reports.
//
// Bench binaries reproduce the paper's tables/figures as text; this helper
// keeps columns aligned and consistent across all of them.
#pragma once

#include <string>
#include <vector>

namespace resmatch::util {

/// Collects rows and renders a monospace table with a header rule.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> columns);

  void add_row(std::vector<std::string> fields);

  /// Convenience for numeric rows (formatted with format_number).
  void add_numeric_row(const std::vector<double>& fields, int precision = 4);

  /// Render the full table (header, rule, rows) to a string.
  [[nodiscard]] std::string render() const;

  /// Render and write to stdout.
  void print() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace resmatch::util
