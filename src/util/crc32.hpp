// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
//
// Used by the svc write-ahead log to frame records: a torn or corrupted
// frame fails its checksum and recovery stops cleanly at the last good
// record instead of restoring garbage state. The incremental form (pass
// the previous crc back in) lets callers checksum a record assembled in
// pieces without staging it into one buffer.
#pragma once

#include <cstddef>
#include <cstdint>

namespace resmatch::util {

/// One-shot or incremental CRC-32. For incremental use, feed the previous
/// return value back as `crc` (start with 0).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len,
                                  std::uint32_t crc = 0) noexcept;

}  // namespace resmatch::util
