// Deterministic, seeded fault injection for the service layer.
//
// Production robustness code is only as good as the failures it has
// actually seen. The FaultInjector lets tests and benches force the
// failure paths — store file I/O, snapshot rename, WAL append/fsync/
// rotation, queue admission, worker-thread spawn — on a deterministic
// schedule: every decision is a pure function of (seed, site, per-site
// sequence number), so a failing chaos run replays bit-for-bit from its
// seed.
//
// The hook is zero-cost when disabled: call sites hold a nullable
// FaultInjector* and the inlined check is one null test. With an injector
// attached but a site unarmed (probability 0), the cost is one relaxed
// fetch_add on that site's sequence counter.
//
// `max_consecutive` bounds runs of injected failures at one site, so a
// retry loop with more attempts than the bound deterministically recovers
// — the property chaos tests rely on this to assert exact equivalence
// with a fault-free run.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstddef>

namespace resmatch::util {

/// Every operation the service layer can be told to fail. Keep in sync
/// with fault_site_name().
enum class FaultSite : std::size_t {
  kStoreRead = 0,      ///< snapshot open/read (EstimatorStore::load_file)
  kStoreWrite,         ///< snapshot write (EstimatorStore::save_file)
  kSnapshotRename,     ///< the atomic rename publishing a snapshot
  kWalAppend,          ///< write-ahead-log append (torn write, repaired)
  kWalFsync,           ///< fsync(2) of a WAL shard (record written, not durable)
  kWalRotate,          ///< per-shard file creation during WAL rotation
  kQueueAdmit,         ///< admission-queue push (reported as backpressure)
  kThreadSpawn,        ///< worker-thread creation
  kCount,
};

[[nodiscard]] const char* fault_site_name(FaultSite site) noexcept;

/// Per-site failure schedule.
struct FaultSpec {
  /// Probability in [0, 1] that one check at this site fails.
  double probability = 0.0;
  /// Hard cap on consecutive injected failures; once reached, the next
  /// check at this site succeeds and the run-length resets. The default
  /// (no cap) models a persistently broken dependency.
  std::uint32_t max_consecutive = UINT32_MAX;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) noexcept : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arm (or re-arm) one site. Not thread-safe against concurrent
  /// should_fail on the same site — arm before traffic.
  void arm(FaultSite site, FaultSpec spec) noexcept {
    sites_[index(site)].spec = spec;
  }

  /// Arm every site with the same spec.
  void arm_all(FaultSpec spec) noexcept {
    for (auto& s : sites_) s.spec = spec;
  }

  /// One check at `site`: deterministically decides from (seed, site,
  /// sequence number) whether this operation fails. Thread-safe; under a
  /// serial drive the decision sequence is exactly reproducible.
  [[nodiscard]] bool should_fail(FaultSite site) noexcept;

  /// Checks made / failures injected at one site so far.
  [[nodiscard]] std::uint64_t checks(FaultSite site) const noexcept {
    return sites_[index(site)].sequence.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t injected(FaultSite site) const noexcept {
    return sites_[index(site)].injected.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  struct alignas(64) Site {
    FaultSpec spec;
    std::atomic<std::uint64_t> sequence{0};
    std::atomic<std::uint64_t> injected{0};
    std::atomic<std::uint32_t> consecutive{0};
  };

  static constexpr std::size_t index(FaultSite site) noexcept {
    return static_cast<std::size_t>(site);
  }

  std::uint64_t seed_;
  std::array<Site, static_cast<std::size_t>(FaultSite::kCount)> sites_{};
};

/// The zero-cost-when-disabled hook: one null test when no injector is
/// attached, used by every instrumented call site.
[[nodiscard]] inline bool fault(FaultInjector* injector,
                                FaultSite site) noexcept {
  return injector != nullptr && injector->should_fail(site);
}

}  // namespace resmatch::util
