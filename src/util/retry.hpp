// Bounded retry with capped exponential backoff and deterministic jitter.
//
// Store and snapshot I/O in the service layer retries through this policy
// instead of ad-hoc loops, so every caller gets the same three guarantees:
// a hard attempt bound, a per-operation deadline (wall-clock budget across
// all attempts), and backoff jitter that is a pure function of
// (seed, attempt) — reproducible under test, yet spread out across
// callers with different seeds so synchronized retry storms cannot form.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "util/rng.hpp"

namespace resmatch::util {

struct RetryPolicy {
  /// Total tries including the first (1 = no retry).
  std::uint32_t max_attempts = 5;
  /// Backoff before retry k (1-based) is
  /// min(initial * multiplier^(k-1), max) * (1 - jitter * u(seed, k))
  /// with u in [0, 1) — "full jitter downward": never longer than the
  /// deterministic cap, never synchronized across seeds.
  std::chrono::microseconds initial_backoff{100};
  std::chrono::microseconds max_backoff{100'000};
  double multiplier = 2.0;
  /// Fraction of the backoff that jitter may remove, in [0, 1].
  double jitter = 0.5;
  /// Wall-clock budget across all attempts; zero = unbounded. Checked
  /// before sleeping: a retry whose backoff would cross the deadline is
  /// abandoned instead of slept through.
  std::chrono::microseconds deadline{0};

  /// Backoff before retry `attempt` (1-based; attempt 0 returns zero).
  [[nodiscard]] std::chrono::microseconds backoff_for(
      std::uint32_t attempt, std::uint64_t seed) const noexcept;
};

/// Outcome of a retried operation.
struct RetryResult {
  bool ok = false;
  std::uint32_t attempts = 0;  ///< tries actually made (>= 1)
  std::chrono::microseconds slept{0};
  /// True when the loop stopped because the deadline would be exceeded
  /// rather than because attempts ran out.
  bool deadline_exceeded = false;
};

/// Run `op()` (returning bool success) under `policy`. `sleep` defaults to
/// std::this_thread::sleep_for; tests inject a recording no-op sleeper.
RetryResult retry_with(
    const RetryPolicy& policy, std::uint64_t seed,
    const std::function<bool()>& op,
    const std::function<void(std::chrono::microseconds)>& sleep = nullptr);

}  // namespace resmatch::util
