#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace resmatch::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // xoshiro state must not be all-zero; splitmix64 seeding guarantees a
  // well-distributed nonzero state for any seed, as recommended upstream.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire's multiply-shift rejection method: unbiased and division-free
  // in the common case.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0ULL - range) % range;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::exponential(double rate) noexcept {
  assert(rate > 0.0);
  // -log(1-U) avoids log(0) since uniform() < 1.
  return -std::log1p(-uniform()) / rate;
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; u1 in (0,1] to keep log finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) noexcept {
  assert(xm > 0.0 && alpha > 0.0);
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: fall into last bucket
}

Rng Rng::split() noexcept {
  return Rng{(*this)() ^ 0xD2B74407B1CE6E93ULL};
}

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), exponent);
    cdf_[k - 1] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t ZipfDistribution::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform();
  // Binary search for the first CDF entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;  // ranks are 1-based
}

}  // namespace resmatch::util
