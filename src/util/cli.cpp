#include "util/cli.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace resmatch::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      throw std::runtime_error("unexpected positional argument: " +
                               std::string(arg));
    }
    const std::string_view body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(body)] = "true";
    } else {
      values_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  queried_[key] = true;
  return values_.count(key) > 0;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double CliArgs::get(const std::string& key, double fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const auto parsed = parse_double(it->second);
  if (!parsed) throw std::runtime_error("--" + key + " expects a number");
  return *parsed;
}

std::int64_t CliArgs::get(const std::string& key,
                          std::int64_t fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const auto parsed = parse_int(it->second);
  if (!parsed) throw std::runtime_error("--" + key + " expects an integer");
  return *parsed;
}

bool CliArgs::get(const std::string& key, bool fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::runtime_error("--" + key + " expects true/false");
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!queried_.count(key)) out.push_back(key);
  }
  return out;
}

}  // namespace resmatch::util
