// Leveled logging to stderr.
//
// A tiny printf-style logger: experiment narration and debugging, not
// telemetry. Level filtering is a runtime global. Emission is serialized
// under a mutex so the service layer's worker threads (src/svc) can log
// without interleaving lines; an optional sink hook redirects lines away
// from stderr (e.g. into a test's capture buffer or a service's log file).
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace resmatch::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded. Defaults to kInfo.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Replace the output destination. Null restores the stderr default. The
/// sink is called with the level and the unformatted message, one line at
/// a time, under the logger's lock (sinks need no locking of their own
/// but must not log reentrantly).
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// Emit one line at the given level (no trailing newline needed).
/// Thread-safe.
void log_message(LogLevel level, const std::string& message);

namespace detail {
/// Stream-builder so call sites can write RM_LOG(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace resmatch::util

#define RM_LOG(level) \
  ::resmatch::util::detail::LogLine(::resmatch::util::LogLevel::level)
