// Leveled logging to stderr.
//
// The simulator is single-threaded and deterministic; logging exists for
// experiment narration and debugging, not telemetry, so a tiny printf-style
// logger is all that is warranted. Level filtering is a runtime global.
#pragma once

#include <sstream>
#include <string>

namespace resmatch::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded. Defaults to kInfo.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one line at the given level (no trailing newline needed).
void log_message(LogLevel level, const std::string& message);

namespace detail {
/// Stream-builder so call sites can write RM_LOG(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace resmatch::util

#define RM_LOG(level) \
  ::resmatch::util::detail::LogLine(::resmatch::util::LogLevel::level)
