// CRC-framed record helpers shared by the WAL and the wire protocol.
//
// One frame is:   u32 payload_len | u32 crc32(payload) | payload
//
// The same torn-frame discipline applies to both consumers: a frame whose
// length word is implausible, whose payload is cut short, or whose CRC
// does not match is *bad*, and the consumer decides what that means (the
// WAL stops replaying the file at its torn tail; the network decoder
// closes the connection as a protocol error). Encoding and decoding live
// here once so the two layers cannot drift.
//
// Byte order is host-endian, exactly as the WAL has always written it —
// the log is a local durability artifact and the wire protocol targets
// same-architecture clusters (documented in DESIGN.md §7).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

namespace resmatch::util {

/// Bytes of the u32 len + u32 crc header preceding every payload.
inline constexpr std::size_t kFrameHeaderSize = 8;

/// Append a little helper used by frame encoding and the WAL's torn-tail
/// test hook: four raw bytes of `v` in host order.
void put_u32(std::vector<char>& out, std::uint32_t v);

/// Begin a frame: appends a placeholder header to `buf` and returns its
/// offset. Append the payload bytes, then call frame_end with the same
/// mark to patch the real length and CRC in place. Encoding the payload
/// directly into the target buffer keeps the WAL's append path copy-free.
[[nodiscard]] std::size_t frame_begin(std::vector<char>& buf);

/// Finalize the frame begun at `mark`: everything appended after the
/// header is the payload; its length and CRC are patched into the header.
void frame_end(std::vector<char>& buf, std::size_t mark);

/// Convenience for contiguous payloads: frame_begin + copy + frame_end.
void append_frame(std::vector<char>& buf, const void* payload,
                  std::size_t len);

// --- stream (stdio) reading: the WAL replay shape ---------------------------

enum class FrameReadStatus {
  kOk,   ///< payload holds one verified frame
  kEof,  ///< clean end: no (complete) length word to read
  kBad,  ///< torn or corrupt frame; stop consuming this stream
};

/// Read one frame from `f` into `payload`. `max_payload` bounds the length
/// word so a garbage value is rejected before it becomes a huge allocation;
/// `validate_len`, when set, is an additional consumer-specific length
/// check (e.g. the WAL's field-alignment rule) applied before any payload
/// bytes are read — exactly the order the WAL has always checked in.
[[nodiscard]] FrameReadStatus read_frame(
    std::FILE* f, std::vector<char>& payload, std::uint32_t max_payload,
    const std::function<bool(std::uint32_t)>& validate_len = nullptr);

// --- buffer parsing: the wire-decoder shape ---------------------------------

enum class FrameParseStatus {
  kOk,        ///< a whole verified frame is available
  kNeedMore,  ///< not enough bytes yet; read more and retry
  kBad,       ///< implausible length or CRC mismatch; the stream is broken
};

/// A parsed frame borrowing the caller's buffer (valid until it mutates).
struct FrameView {
  const char* payload = nullptr;
  std::uint32_t len = 0;
  /// Total bytes the frame occupies (header + payload); consume this many.
  std::size_t frame_size = 0;
};

/// Try to parse one frame from `data[0..avail)` without consuming it.
[[nodiscard]] FrameParseStatus parse_frame(const char* data,
                                           std::size_t avail,
                                           std::uint32_t max_payload,
                                           FrameView& out);

}  // namespace resmatch::util
