// Minimal Expected<T> for C++20 (std::expected is C++23).
//
// Used at library boundaries that can fail for data-dependent reasons
// (parsers, file readers). Internal logic errors use assertions instead.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace resmatch::util {

/// Result-or-error. Holds either a value of type T or an error message.
/// Intentionally tiny: no monadic combinators, just checked access.
template <typename T>
class Expected {
 public:
  /*implicit*/ Expected(T value) : value_(std::move(value)) {}

  /// Construct the error state. Named constructor avoids ambiguity when
  /// T is itself convertible from std::string.
  static Expected failure(std::string message) {
    Expected e{ErrorTag{}};
    e.error_ = std::move(message);
    return e;
  }

  [[nodiscard]] bool has_value() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(has_value());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::move(*value_);
  }

  [[nodiscard]] const std::string& error() const {
    assert(!has_value());
    return error_;
  }

 private:
  struct ErrorTag {};
  explicit Expected(ErrorTag) {}

  std::optional<T> value_;
  std::string error_;
};

}  // namespace resmatch::util
