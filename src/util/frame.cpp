#include "util/frame.hpp"

#include <cstring>

#include "util/crc32.hpp"

namespace resmatch::util {

void put_u32(std::vector<char>& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.insert(out.end(), b, b + 4);
}

std::size_t frame_begin(std::vector<char>& buf) {
  const std::size_t mark = buf.size();
  put_u32(buf, 0);  // length, patched by frame_end
  put_u32(buf, 0);  // crc, patched by frame_end
  return mark;
}

void frame_end(std::vector<char>& buf, std::size_t mark) {
  const std::size_t payload_at = mark + kFrameHeaderSize;
  const auto len = static_cast<std::uint32_t>(buf.size() - payload_at);
  const std::uint32_t crc = crc32(buf.data() + payload_at, len);
  std::memcpy(buf.data() + mark, &len, 4);
  std::memcpy(buf.data() + mark + 4, &crc, 4);
}

void append_frame(std::vector<char>& buf, const void* payload,
                  std::size_t len) {
  const std::size_t mark = frame_begin(buf);
  const char* p = static_cast<const char*>(payload);
  buf.insert(buf.end(), p, p + len);
  frame_end(buf, mark);
}

FrameReadStatus read_frame(
    std::FILE* f, std::vector<char>& payload, std::uint32_t max_payload,
    const std::function<bool(std::uint32_t)>& validate_len) {
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  if (std::fread(&len, 4, 1, f) != 1) return FrameReadStatus::kEof;
  if (std::fread(&crc, 4, 1, f) != 1 || len > max_payload ||
      (validate_len && !validate_len(len))) {
    return FrameReadStatus::kBad;
  }
  payload.resize(len);
  if (std::fread(payload.data(), 1, len, f) != len ||
      crc32(payload.data(), len) != crc) {
    return FrameReadStatus::kBad;
  }
  return FrameReadStatus::kOk;
}

FrameParseStatus parse_frame(const char* data, std::size_t avail,
                             std::uint32_t max_payload, FrameView& out) {
  if (avail < kFrameHeaderSize) return FrameParseStatus::kNeedMore;
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  std::memcpy(&len, data, 4);
  std::memcpy(&crc, data + 4, 4);
  if (len > max_payload) return FrameParseStatus::kBad;
  if (avail < kFrameHeaderSize + len) return FrameParseStatus::kNeedMore;
  if (crc32(data + kFrameHeaderSize, len) != crc) {
    return FrameParseStatus::kBad;
  }
  out.payload = data + kFrameHeaderSize;
  out.len = len;
  out.frame_size = kFrameHeaderSize + len;
  return FrameParseStatus::kOk;
}

}  // namespace resmatch::util
