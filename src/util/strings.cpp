#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace resmatch::util {

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<long long> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string format_number(double v, int precision) {
  std::string s = format("%.*f", precision, v);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace resmatch::util
