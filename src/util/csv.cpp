#include "util/csv.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace resmatch::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  if (header_written_ || rows_ > 0) {
    throw std::logic_error("CsvWriter: header after rows");
  }
  write_fields(columns);
  header_written_ = true;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  write_fields(fields);
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& fields) {
  std::vector<std::string> text;
  text.reserve(fields.size());
  for (double v : fields) text.push_back(format_number(v, 6));
  row(text);
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace resmatch::util
