// Core vocabulary types shared across the resmatch library.
//
// All quantities carry explicit units in their names (seconds, MiB) rather
// than wrapper classes; identifiers use dedicated integral types so that a
// JobId cannot be silently passed where a UserId is expected.
#pragma once

#include <cstdint>
#include <limits>

namespace resmatch {

/// Simulated wall-clock time and durations, in seconds.
using Seconds = double;

/// Memory capacity, in mebibytes. The CM5 context makes MiB the natural
/// unit (32 MiB per node); fractional values appear mid-estimation.
using MiB = double;

/// Strongly-typed identifiers. Distinct enum-class-over-integer wrappers
/// would be heavier than needed; distinct typedefs plus naming discipline
/// keep call sites readable while staying zero-cost.
using JobId = std::uint64_t;
using UserId = std::uint32_t;
using AppId = std::uint32_t;
using MachineId = std::uint32_t;
using GroupId = std::uint64_t;

/// Sentinel for "no such id".
inline constexpr std::uint64_t kInvalidId64 =
    std::numeric_limits<std::uint64_t>::max();
inline constexpr std::uint32_t kInvalidId32 =
    std::numeric_limits<std::uint32_t>::max();

/// A value meaning "unknown / not recorded" in trace fields, mirroring the
/// Standard Workload Format convention of -1.
inline constexpr double kUnknown = -1.0;

/// True if a trace field holds a real value (SWF uses -1 for unknown).
[[nodiscard]] constexpr bool is_known(double v) noexcept { return v >= 0.0; }

}  // namespace resmatch
