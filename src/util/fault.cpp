#include "util/fault.hpp"

#include "util/rng.hpp"

namespace resmatch::util {

const char* fault_site_name(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kStoreRead: return "store-read";
    case FaultSite::kStoreWrite: return "store-write";
    case FaultSite::kSnapshotRename: return "snapshot-rename";
    case FaultSite::kWalAppend: return "wal-append";
    case FaultSite::kWalFsync: return "wal-fsync";
    case FaultSite::kWalRotate: return "wal-rotate";
    case FaultSite::kQueueAdmit: return "queue-admit";
    case FaultSite::kThreadSpawn: return "thread-spawn";
    case FaultSite::kCount: break;
  }
  return "unknown";
}

bool FaultInjector::should_fail(FaultSite site) noexcept {
  Site& s = sites_[index(site)];
  const std::uint64_t seq =
      s.sequence.fetch_add(1, std::memory_order_relaxed);
  const double p = s.spec.probability;
  if (p <= 0.0) return false;

  // Decision = pure function of (seed, site, sequence): mix them into one
  // word and compare the top 53 bits against the probability threshold.
  const std::uint64_t h =
      mix64(seed_ ^ mix64(static_cast<std::uint64_t>(index(site)) * 0x9E3779B97F4A7C15ULL + seq));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  bool fail = p >= 1.0 || u < p;

  if (fail) {
    // Bound the failure run-length so bounded retry loops deterministically
    // recover. fetch_add-then-check keeps this thread-safe; a race can only
    // end a run one failure early, never extend it past the cap.
    const std::uint32_t run =
        s.consecutive.fetch_add(1, std::memory_order_relaxed) + 1;
    if (run > s.spec.max_consecutive) {
      s.consecutive.store(0, std::memory_order_relaxed);
      fail = false;
    }
  }
  if (fail) {
    s.injected.fetch_add(1, std::memory_order_relaxed);
  } else {
    s.consecutive.store(0, std::memory_order_relaxed);
  }
  return fail;
}

}  // namespace resmatch::util
