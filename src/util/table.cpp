#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/strings.hpp"

namespace resmatch::util {

ConsoleTable::ConsoleTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void ConsoleTable::add_row(std::vector<std::string> fields) {
  fields.resize(columns_.size());
  rows_.push_back(std::move(fields));
}

void ConsoleTable::add_numeric_row(const std::vector<double>& fields, int precision) {
  std::vector<std::string> text;
  text.reserve(fields.size());
  for (double v : fields) text.push_back(format_number(v, precision));
  add_row(std::move(text));
}

std::string ConsoleTable::render() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      out += row[c];
      if (c + 1 < columns_.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  emit_row(columns_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void ConsoleTable::print() const {
  const std::string text = render();
  std::fwrite(text.data(), 1, text.size(), stdout);
}

}  // namespace resmatch::util
