// Fixed-capacity resource vector: the vocabulary type of multi-resource
// matching (memory + CPU + GPU per node).
//
// Lives in util rather than core because the library dependency graph
// forbids trace -> core: trace models annotate jobs with per-dimension
// demand, core estimates each dimension independently, and sim packs the
// vector onto machines — all three need the same type, and util is the
// only library all three link.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace resmatch {

/// Dimension indices. Memory is dimension 0 everywhere: the scalar
/// engine's MiB quantities ARE the memory coordinate, which is what lets
/// the dims=1 multi-resource path reduce to the single-resource simulator
/// bit for bit (tests/mr_equiv_test).
inline constexpr std::size_t kDimMem = 0;
inline constexpr std::size_t kDimCpu = 1;
inline constexpr std::size_t kDimGpu = 2;
inline constexpr std::size_t kMaxResourceDims = 3;

[[nodiscard]] constexpr std::string_view resource_dim_name(
    std::size_t dim) noexcept {
  switch (dim) {
    case kDimMem:
      return "mem";
    case kDimCpu:
      return "cpu";
    case kDimGpu:
      return "gpu";
    default:
      return "dim?";
  }
}

/// A point in resource space: memory (MiB per node), CPU cores, GPUs.
/// Trailing dimensions beyond the active count are zero; a capacity of 0
/// means "the machine has none of this resource", and a request of 0
/// always fits it.
struct ResourceVector {
  std::array<double, kMaxResourceDims> v{};  // {mem, cpu, gpu}

  constexpr ResourceVector() = default;
  constexpr ResourceVector(double mem, double cpu = 0.0, double gpu = 0.0)
      : v{mem, cpu, gpu} {}

  [[nodiscard]] constexpr double& operator[](std::size_t d) noexcept {
    return v[d];
  }
  [[nodiscard]] constexpr double operator[](std::size_t d) const noexcept {
    return v[d];
  }

  [[nodiscard]] constexpr double mem() const noexcept { return v[kDimMem]; }
  [[nodiscard]] constexpr double cpu() const noexcept { return v[kDimCpu]; }
  [[nodiscard]] constexpr double gpu() const noexcept { return v[kDimGpu]; }

  /// Component-wise >= over the first `dims` coordinates: does a machine
  /// with THIS capacity vector satisfy `req`? Exact comparison, no
  /// epsilon — the same test the scalar pool walk applies to memory, so
  /// dims=1 eligibility is bitwise-identical to the scalar path.
  [[nodiscard]] constexpr bool covers(const ResourceVector& req,
                                      std::size_t dims) const noexcept {
    for (std::size_t d = 0; d < dims && d < kMaxResourceDims; ++d) {
      if (v[d] < req.v[d]) return false;
    }
    return true;
  }

  [[nodiscard]] constexpr bool operator==(
      const ResourceVector& other) const noexcept {
    return v == other.v;
  }
  [[nodiscard]] constexpr bool operator!=(
      const ResourceVector& other) const noexcept {
    return !(*this == other);
  }
};

}  // namespace resmatch
