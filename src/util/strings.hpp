// Small string utilities used by parsers and report writers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace resmatch::util {

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split on a delimiter character; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char delim);

/// Split on runs of whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Parse helpers returning nullopt on any syntax error or trailing junk.
[[nodiscard]] std::optional<double> parse_double(std::string_view s) noexcept;
[[nodiscard]] std::optional<long long> parse_int(std::string_view s) noexcept;

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Render a double with the fewest digits that round-trip visually for
/// reports (up to `precision` decimals, trailing zeros trimmed).
[[nodiscard]] std::string format_number(double v, int precision = 4);

}  // namespace resmatch::util
