#include "util/retry.hpp"

#include <algorithm>
#include <cmath>

namespace resmatch::util {

std::chrono::microseconds RetryPolicy::backoff_for(
    std::uint32_t attempt, std::uint64_t seed) const noexcept {
  if (attempt == 0) return std::chrono::microseconds{0};
  const double base = static_cast<double>(initial_backoff.count());
  const double cap = static_cast<double>(max_backoff.count());
  double raw = base * std::pow(std::max(multiplier, 1.0),
                               static_cast<double>(attempt - 1));
  raw = std::min(raw, cap);
  // Deterministic jitter: u(seed, attempt) in [0, 1) shaves off up to
  // `jitter` of the backoff.
  const std::uint64_t h = mix64(seed ^ (0xA24BAED4963EE407ULL * attempt));
  const double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  const double j = std::clamp(jitter, 0.0, 1.0);
  raw *= 1.0 - j * u;
  return std::chrono::microseconds{
      static_cast<std::chrono::microseconds::rep>(raw)};
}

RetryResult retry_with(
    const RetryPolicy& policy, std::uint64_t seed,
    const std::function<bool()>& op,
    const std::function<void(std::chrono::microseconds)>& sleep) {
  RetryResult result;
  const std::uint32_t attempts = std::max<std::uint32_t>(1, policy.max_attempts);
  for (std::uint32_t attempt = 1; attempt <= attempts; ++attempt) {
    ++result.attempts;
    if (op()) {
      result.ok = true;
      return result;
    }
    if (attempt == attempts) break;
    const auto backoff = policy.backoff_for(attempt, seed);
    if (policy.deadline.count() > 0 &&
        result.slept + backoff > policy.deadline) {
      result.deadline_exceeded = true;
      break;
    }
    if (sleep) {
      sleep(backoff);
    } else if (backoff.count() > 0) {
      std::this_thread::sleep_for(backoff);
    }
    result.slept += backoff;
  }
  return result;
}

}  // namespace resmatch::util
