// Deterministic pseudo-random number generation.
//
// Every stochastic component in resmatch takes an explicit seed so that
// simulations are exactly reproducible across runs and platforms. We use
// xoshiro256** (public-domain, Blackman & Vigna) seeded via splitmix64,
// rather than std::mt19937, because its stream is specified independently
// of the standard library implementation and it is materially faster.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace resmatch::util {

/// splitmix64 step; used for seeding and cheap hash mixing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless 64-bit mix of a single value (useful for stable hashing).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;
  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;
  /// Exponential with given rate (mean 1/rate). Requires rate > 0.
  [[nodiscard]] double exponential(double rate) noexcept;
  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) noexcept;
  /// Log-normal: exp(N(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;
  /// Pareto with scale xm > 0 and shape alpha > 0.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  /// Index drawn from the (unnormalized, non-negative) weight vector.
  /// Requires at least one strictly positive weight.
  [[nodiscard]] std::size_t weighted_index(
      const std::vector<double>& weights) noexcept;

  /// Derive an independent child generator (stable function of parent state).
  [[nodiscard]] Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Zipf (discrete power-law) sampler over {1, ..., n} with exponent s.
/// Precomputes the CDF once; sampling is O(log n).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  /// Sample a rank in [1, n].
  [[nodiscard]] std::size_t operator()(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace resmatch::util
