#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace resmatch::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

/// Guards the sink pointer and serializes emission: concurrent workers
/// (src/svc) must not interleave partial lines.
std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

LogSink& sink_slot() {
  static LogSink sink;
  return sink;
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(log_mutex());
  sink_slot() = std::move(sink);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level() || message.empty()) return;
  std::lock_guard<std::mutex> lock(log_mutex());
  if (const LogSink& sink = sink_slot()) {
    sink(level, message);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace resmatch::util
