// Tiny command-line option parser for benches and examples.
//
// Supports --key=value and --flag forms only; anything unrecognized is an
// error so typos in experiment parameters fail loudly instead of silently
// running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace resmatch::util {

class CliArgs {
 public:
  /// Parse argv. Throws std::runtime_error on malformed options.
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters with defaults. Throw std::runtime_error when the value
  /// is present but unparseable.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t get(const std::string& key,
                                 std::int64_t fallback) const;
  [[nodiscard]] bool get(const std::string& key, bool fallback) const;

  /// Keys that were provided but never queried — callers may report them.
  [[nodiscard]] std::vector<std::string> unused() const;

  [[nodiscard]] const std::string& program() const noexcept {
    return program_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace resmatch::util
