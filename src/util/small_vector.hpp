// Inline-storage vector for tiny trivially-copyable payloads.
//
// The simulator's hot path creates and destroys one sim::Allocation per
// job start/stop; its pool list almost never exceeds the pool count of
// the paper's clusters (two pools). Holding the first N elements inline
// keeps those starts and stops off the heap entirely; only pathological
// many-pool allocations spill.
//
// Deliberately minimal: exactly the surface the allocation bookkeeping
// uses (emplace_back, iteration, size/empty/clear, operator[]). Restricted
// to trivially copyable T so growth and copies are memcpy.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <type_traits>

namespace resmatch::util {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable payloads");
  static_assert(N > 0, "inline capacity must be at least one element");

 public:
  SmallVector() noexcept = default;

  SmallVector(const SmallVector& other) { assign_from(other); }

  SmallVector(SmallVector&& other) noexcept { steal_from(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      release_heap();
      assign_from(other);
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      release_heap();
      steal_from(other);
    }
    return *this;
  }

  ~SmallVector() { release_heap(); }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    if (size_ == capacity_) grow();
    data()[size_++] = T(static_cast<Args&&>(args)...);
  }

  void push_back(const T& value) { emplace_back(value); }

  void clear() noexcept { size_ = 0; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool inlined() const noexcept { return heap_ == nullptr; }

  [[nodiscard]] T* data() noexcept { return heap_ ? heap_ : inline_; }
  [[nodiscard]] const T* data() const noexcept {
    return heap_ ? heap_ : inline_;
  }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data()[i];
  }

  [[nodiscard]] T* begin() noexcept { return data(); }
  [[nodiscard]] T* end() noexcept { return data() + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data(); }
  [[nodiscard]] const T* end() const noexcept { return data() + size_; }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  void assign_from(const SmallVector& other) {
    size_ = other.size_;
    if (other.heap_ != nullptr) {
      capacity_ = other.capacity_;
      heap_ = new T[capacity_];
      std::memcpy(heap_, other.heap_, size_ * sizeof(T));
    } else {
      capacity_ = N;
      heap_ = nullptr;
      std::memcpy(inline_, other.inline_, size_ * sizeof(T));
    }
  }

  void steal_from(SmallVector& other) noexcept {
    size_ = other.size_;
    if (other.heap_ != nullptr) {
      capacity_ = other.capacity_;
      heap_ = other.heap_;
      other.heap_ = nullptr;
    } else {
      capacity_ = N;
      heap_ = nullptr;
      std::memcpy(inline_, other.inline_, size_ * sizeof(T));
    }
    other.size_ = 0;
    other.capacity_ = N;
  }

  void grow() {
    const std::size_t next = capacity_ * 2;
    T* bigger = new T[next];
    std::memcpy(bigger, data(), size_ * sizeof(T));
    release_heap();
    heap_ = bigger;
    capacity_ = next;
  }

  void release_heap() noexcept {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = N;
  }

  T inline_[N];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace resmatch::util
