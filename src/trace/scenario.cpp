#include "trace/scenario.hpp"

#include <utility>

namespace resmatch::trace {

ScenarioWorkload scenario_from(Workload workload) {
  ScenarioWorkload out;
  out.dims = 1;
  out.mr.reserve(workload.jobs.size());
  for (const auto& job : workload.jobs) {
    MrJobInfo info;
    info.requested = ResourceVector(job.requested_mem_mib);
    info.used_peak = ResourceVector(job.used_mem_mib);
    info.profile = {};  // flat: the scalar engine's usage model
    out.mr.push_back(info);
  }
  out.base = std::move(workload);
  return out;
}

}  // namespace resmatch::trace
