// Time-varying within-job resource footprints.
//
// The scalar simulator models usage as flat: a job touches its peak from
// the first instant, so an under-provisioned attempt is killed "after a
// random time, drawn uniformly between zero and the execution run-time"
// (paper §3.1 — the kill time is unknowable when usage is constant). Real
// footprints ramp: Flex (usage != allocation) observes jobs whose demand
// grows over the run, which makes the kill time DETERMINISTIC — the first
// instant usage crosses the grant — and makes early kills and late kills
// feed different observations back to the estimator.
//
// A FootprintProfile is normalized by the job's peak and runtime, so one
// profile describes every resource dimension of a job: usage_at() scales
// it by that dimension's peak.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "util/types.hpp"

namespace resmatch::trace {

enum class FootprintShape : std::uint8_t {
  kFlat,     ///< peak from the first instant (the scalar engine's model)
  kRamp,     ///< linear climb from start_frac*peak to peak over the run
  kStep,     ///< start_frac*peak until knee_frac of the run, then peak
  kPlateau,  ///< linear climb reaching peak at knee_frac, hold after
};

[[nodiscard]] std::string_view to_string(FootprintShape shape) noexcept;

/// Usage-over-time shape of one job, shared across its resource
/// dimensions. Non-decreasing in time; reaches the peak by the end of the
/// run, so a successful completion always observes the true peak.
struct FootprintProfile {
  FootprintShape shape = FootprintShape::kFlat;
  /// Usage at t=0 as a fraction of peak (ignored by kFlat).
  double start_frac = 1.0;
  /// Step/plateau transition point as a fraction of runtime.
  double knee_frac = 0.5;

  /// Usage `elapsed` seconds into a run of `runtime` whose peak is
  /// `peak`. Returns exactly `peak` for kFlat and for elapsed >= runtime.
  [[nodiscard]] double usage_at(Seconds elapsed, Seconds runtime,
                                double peak) const noexcept;

  /// The first time usage reaches `grant` on its way to a `peak` above
  /// it — the deterministic kill time of an under-provisioned attempt.
  /// nullopt when the profile never crosses (peak fits the grant) or when
  /// the shape is kFlat (flat overruns keep the paper's uniformly-drawn
  /// kill time; the caller draws it).
  [[nodiscard]] std::optional<Seconds> first_crossing(
      double grant, Seconds runtime, double peak) const noexcept;
};

}  // namespace resmatch::trace
