// Workload characterization reports.
//
// A textual profile of a trace in the style of the Parallel Workloads
// Archive summaries: population, load, runtime/memory distributions, and
// the paper's similarity-group statistics. Used by the swf_inspect example
// and handy when validating a new trace before simulation.
#pragma once

#include <string>

#include "trace/job_record.hpp"

namespace resmatch::trace {

/// Aggregate profile of a workload.
struct WorkloadProfile {
  std::size_t jobs = 0;
  std::size_t users = 0;
  std::size_t apps = 0;
  Seconds span = 0.0;
  double total_node_seconds = 0.0;

  // Runtime distribution (seconds).
  double runtime_mean = 0.0;
  double runtime_p50 = 0.0;
  double runtime_p95 = 0.0;

  // Width distribution (nodes).
  std::uint32_t nodes_min = 0;
  std::uint32_t nodes_max = 0;
  double nodes_mean = 0.0;

  // Memory (per node, MiB).
  double requested_mem_mean = 0.0;
  double used_mem_mean = 0.0;
  double overprovision_ge2_fraction = 0.0;
  double overprovision_max = 0.0;

  // Similarity structure under the paper's key.
  std::size_t similarity_groups = 0;
  double large_group_job_coverage = 0.0;  ///< jobs in groups >= 10

  // Trace-recorded failures.
  double failed_fraction = 0.0;
};

/// Compute the profile (single pass plus the group scan).
[[nodiscard]] WorkloadProfile profile_workload(const Workload& workload);

/// Render the profile as an aligned, labeled report.
[[nodiscard]] std::string render_profile(const WorkloadProfile& profile,
                                         const std::string& name);

}  // namespace resmatch::trace
