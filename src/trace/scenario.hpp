// Multi-resource workload view: a Workload plus per-job resource vectors
// and footprint profiles.
//
// JobRecord stays the single-resource SWF schema (the whole scalar stack
// consumes it unchanged); scenario generators annotate each record with
// the full requested/used vectors and a usage-over-time profile in a
// parallel array. Invariant: the memory coordinates of mr[i] mirror
// base.jobs[i].requested_mem_mib / used_mem_mib exactly — that mirror is
// what makes a dims=1 multi-resource run reduce to the scalar engine.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/footprint.hpp"
#include "trace/job_record.hpp"
#include "util/resource_vector.hpp"

namespace resmatch::trace {

/// Per-job multi-resource annotation, parallel to Workload::jobs.
struct MrJobInfo {
  ResourceVector requested{};  ///< per-dimension request (mem mirrors record)
  ResourceVector used_peak{};  ///< per-dimension actual peak (mem mirrors)
  FootprintProfile profile{};  ///< time shape, shared across dimensions
};

/// A workload and its multi-resource view. base.jobs[i] and mr[i]
/// describe the same job; `dims` is how many leading dimensions the
/// scenario actually exercises (trailing coordinates are zero).
struct ScenarioWorkload {
  Workload base;
  std::vector<MrJobInfo> mr;
  std::size_t dims = 1;
};

/// Wrap an existing single-resource workload: every job gets a flat
/// profile and a vector whose memory coordinate mirrors its record
/// (cpu = gpu = 0). Running this at dims=1 is decision-identical to the
/// scalar simulator — the A/B equivalence gate runs on exactly this.
[[nodiscard]] ScenarioWorkload scenario_from(Workload workload);

}  // namespace resmatch::trace
