#include "trace/report.hpp"

#include <algorithm>
#include <set>

#include "stats/percentile.hpp"
#include "stats/summary.hpp"
#include "trace/analysis.hpp"
#include "util/strings.hpp"

namespace resmatch::trace {

WorkloadProfile profile_workload(const Workload& workload) {
  WorkloadProfile p;
  p.jobs = workload.jobs.size();
  if (p.jobs == 0) return p;

  std::set<UserId> users;
  std::set<std::pair<UserId, AppId>> apps;
  stats::Summary runtime, nodes, req_mem, used_mem;
  stats::PercentileTracker runtime_pct;
  std::size_t failed = 0, ge2 = 0;
  p.nodes_min = workload.jobs.front().nodes;
  for (const auto& job : workload.jobs) {
    users.insert(job.user);
    apps.insert({job.user, job.app});
    runtime.add(job.runtime);
    runtime_pct.add(job.runtime);
    nodes.add(job.nodes);
    req_mem.add(job.requested_mem_mib);
    used_mem.add(job.used_mem_mib);
    p.nodes_min = std::min(p.nodes_min, job.nodes);
    p.nodes_max = std::max(p.nodes_max, job.nodes);
    p.total_node_seconds += job.work();
    if (job.status == JobStatus::kFailed) ++failed;
    const double ratio = job.overprovision_ratio();
    if (ratio >= 2.0) ++ge2;
    p.overprovision_max = std::max(p.overprovision_max, ratio);
  }
  p.users = users.size();
  p.apps = apps.size();
  p.span = workload.span();
  p.runtime_mean = runtime.mean();
  p.runtime_p50 = runtime_pct.median();
  p.runtime_p95 = runtime_pct.percentile(95.0);
  p.nodes_mean = nodes.mean();
  p.requested_mem_mean = req_mem.mean();
  p.used_mem_mean = used_mem.mean();
  p.overprovision_ge2_fraction =
      static_cast<double>(ge2) / static_cast<double>(p.jobs);
  p.failed_fraction = static_cast<double>(failed) / static_cast<double>(p.jobs);

  const auto groups = profile_groups(workload);
  p.similarity_groups = groups.size();
  const auto dist = group_size_distribution(groups, 10);
  p.large_group_job_coverage = dist.fraction_jobs_ge_threshold;
  return p;
}

std::string render_profile(const WorkloadProfile& p, const std::string& name) {
  std::string out = "Workload profile: " + name + "\n";
  auto line = [&](const char* label, const std::string& value) {
    out += util::format("  %-34s %s\n", label, value.c_str());
  };
  line("jobs", util::format("%zu", p.jobs));
  line("users / (user,app) pairs",
       util::format("%zu / %zu", p.users, p.apps));
  line("span", util::format("%.1f days", p.span / 86400.0));
  line("total demand",
       util::format("%.3g node-seconds", p.total_node_seconds));
  line("runtime mean / p50 / p95",
       util::format("%.0fs / %.0fs / %.0fs", p.runtime_mean, p.runtime_p50,
                    p.runtime_p95));
  line("nodes min / mean / max",
       util::format("%u / %.1f / %u", p.nodes_min, p.nodes_mean,
                    p.nodes_max));
  line("memory requested / used (mean)",
       util::format("%.2f / %.2f MiB per node", p.requested_mem_mean,
                    p.used_mem_mean));
  line("over-provisioned >= 2x",
       util::format("%.1f%% of jobs", 100.0 * p.overprovision_ge2_fraction));
  line("worst over-provisioning",
       util::format("%.1fx", p.overprovision_max));
  line("similarity groups (user,app,mem)",
       util::format("%zu", p.similarity_groups));
  line("jobs in groups of >= 10",
       util::format("%.1f%%", 100.0 * p.large_group_job_coverage));
  line("trace-recorded failures",
       util::format("%.2f%% of jobs", 100.0 * p.failed_fraction));
  return out;
}

}  // namespace resmatch::trace
