// Trace analysis: the measurements behind the paper's Figures 1, 3 and 4.
//
// Grouping here is deliberately decoupled from core::SimilarityIndex (the
// online structure used during scheduling): analysis is the *offline*
// trial-and-error phase the paper describes in §2.2, where candidate
// similarity keys are evaluated against a historical trace.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/regression.hpp"
#include "trace/job_record.hpp"

namespace resmatch::trace {

/// Maps a job to its similarity-group key. The default is the paper's
/// (user id, application number, requested memory) triple.
using GroupKeyFn = std::function<std::uint64_t(const JobRecord&)>;

/// The paper's similarity key, hashed into 64 bits collision-checked by
/// construction (user and app are < 2^24, memory is quantized to KiB).
[[nodiscard]] std::uint64_t default_group_key(const JobRecord& job) noexcept;

/// Figure 1: histogram of requested/used memory ratio across jobs.
struct OverprovisionAnalysis {
  stats::LinearHistogram histogram;    ///< ratio binned [1, max_ratio)
  double fraction_ge2 = 0.0;           ///< paper: ~32.8%
  stats::LinearFit log_fit;            ///< log10(% jobs) vs ratio; paper R²≈0.69
  double max_ratio_seen = 0.0;
};

[[nodiscard]] OverprovisionAnalysis analyze_overprovisioning(
    const Workload& workload, double bin_width = 2.0, double max_ratio = 130.0);

/// Aggregate description of one similarity group as measured on a trace.
struct GroupProfile {
  std::uint64_t key = 0;
  std::size_t size = 0;
  MiB requested_mib = 0.0;   ///< identical across the group by construction
  MiB max_used_mib = 0.0;
  MiB min_used_mib = 0.0;

  /// Figure 4 x-axis: similarity range (max used / min used).
  [[nodiscard]] double similarity_range() const noexcept {
    return min_used_mib > 0.0 ? max_used_mib / min_used_mib : 1.0;
  }
  /// Figure 4 y-axis: potential gain (requested / max used).
  [[nodiscard]] double potential_gain() const noexcept {
    return max_used_mib > 0.0 ? requested_mib / max_used_mib : 1.0;
  }
};

/// Partition a trace into similarity groups under `key`.
[[nodiscard]] std::vector<GroupProfile> profile_groups(
    const Workload& workload, const GroupKeyFn& key = default_group_key);

/// Figure 3: jobs binned by the size of the group they belong to.
struct GroupSizeDistribution {
  /// (group size, number of jobs in groups of that size).
  std::vector<std::pair<long long, std::size_t>> jobs_by_size;
  std::size_t group_count = 0;
  std::size_t job_count = 0;
  /// Paper footnote 2: groups of ≥`threshold` jobs as a fraction of all
  /// groups, and the jobs they cover as a fraction of all jobs.
  double fraction_groups_ge_threshold = 0.0;
  double fraction_jobs_ge_threshold = 0.0;
};

[[nodiscard]] GroupSizeDistribution group_size_distribution(
    const std::vector<GroupProfile>& groups, std::size_t threshold = 10);

/// Figure 4: scatter of (similarity range, potential gain) for groups with
/// at least `min_size` jobs.
struct GroupQualityPoint {
  double similarity_range = 1.0;
  double potential_gain = 1.0;
  std::size_t size = 0;
};

[[nodiscard]] std::vector<GroupQualityPoint> group_quality_scatter(
    const std::vector<GroupProfile>& groups, std::size_t min_size = 10);

}  // namespace resmatch::trace
