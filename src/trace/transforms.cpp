#include "trace/transforms.hpp"

#include <algorithm>

namespace resmatch::trace {

Workload scale_arrivals(Workload workload, double factor) {
  for (auto& job : workload.jobs) job.submit *= factor;
  return workload;
}

Workload scale_to_load(Workload workload, std::size_t machines,
                       double target_load) {
  const double current = workload.offered_load(machines);
  if (current <= 0.0 || target_load <= 0.0) return workload;
  // load ∝ 1/span ∝ 1/factor, so factor = current / target.
  return scale_arrivals(std::move(workload), current / target_load);
}

Workload filter(Workload workload,
                const std::function<bool(const JobRecord&)>& keep) {
  auto& jobs = workload.jobs;
  jobs.erase(std::remove_if(jobs.begin(), jobs.end(),
                            [&](const JobRecord& j) { return !keep(j); }),
             jobs.end());
  return workload;
}

Workload drop_wide_jobs(Workload workload, std::uint32_t max_nodes) {
  return filter(std::move(workload), [max_nodes](const JobRecord& j) {
    return j.nodes <= max_nodes;
  });
}

Workload truncate(Workload workload, std::size_t n) {
  workload = sort_by_submit(std::move(workload));
  if (workload.jobs.size() > n) workload.jobs.resize(n);
  return workload;
}

TrainTestSplit split_by_time(Workload workload, double fraction) {
  workload = sort_by_submit(std::move(workload));
  TrainTestSplit split;
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(workload.jobs.size()) *
      std::clamp(fraction, 0.0, 1.0));
  split.train.name = workload.name + "-train";
  split.test.name = workload.name + "-test";
  split.train.jobs.assign(workload.jobs.begin(),
                          workload.jobs.begin() + static_cast<long>(cut));
  split.test.jobs.assign(workload.jobs.begin() + static_cast<long>(cut),
                         workload.jobs.end());
  // Rebase the test trace so simulations start at time zero.
  if (!split.test.jobs.empty()) {
    const Seconds base = split.test.jobs.front().submit;
    for (auto& job : split.test.jobs) job.submit -= base;
  }
  return split;
}

Workload sort_by_submit(Workload workload) {
  std::stable_sort(
      workload.jobs.begin(), workload.jobs.end(),
      [](const JobRecord& a, const JobRecord& b) { return a.submit < b.submit; });
  return workload;
}

}  // namespace resmatch::trace
