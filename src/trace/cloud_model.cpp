#include "trace/cloud_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace resmatch::trace {

namespace {

struct CloudGroup {
  UserId user = 0;
  AppId app = 0;
  ResourceVector requested{};
  ResourceVector used_base{};  ///< group-typical peak, jittered per job
  std::uint32_t nodes = 1;
  double runtime_log_mean = 5.5;
  FootprintProfile profile{};
};

double draw_ratio(util::Rng& rng, const CloudModelConfig& cfg) {
  if (rng.bernoulli(cfg.frac_ratio_ge2)) {
    return std::min(cfg.max_ratio, 2.0 * rng.pareto(1.0, cfg.pareto_alpha));
  }
  return rng.uniform(1.0, 2.0);
}

FootprintProfile draw_profile(util::Rng& rng,
                              const std::vector<double>& shape_weights) {
  FootprintProfile profile;
  switch (rng.weighted_index(shape_weights)) {
    case 0:
      profile.shape = FootprintShape::kFlat;
      break;
    case 1:
      profile.shape = FootprintShape::kRamp;
      break;
    case 2:
      profile.shape = FootprintShape::kStep;
      break;
    default:
      profile.shape = FootprintShape::kPlateau;
      break;
  }
  profile.start_frac = rng.uniform(0.2, 0.7);
  profile.knee_frac = rng.uniform(0.2, 0.8);
  return profile;
}

}  // namespace

ScenarioWorkload generate_cloud(const CloudModelConfig& cfg) {
  if (cfg.job_count == 0 || cfg.group_count == 0 || cfg.user_count == 0) {
    throw std::invalid_argument("generate_cloud: empty population");
  }
  util::Rng rng(cfg.seed);

  // --- group population ----------------------------------------------------
  std::vector<CloudGroup> groups;
  groups.reserve(cfg.group_count);
  for (std::size_t g = 0; g < cfg.group_count; ++g) {
    CloudGroup group;
    group.user = static_cast<UserId>(
        rng.uniform_int(0, static_cast<std::int64_t>(cfg.user_count) - 1));
    group.app = static_cast<AppId>(g);
    group.requested[kDimMem] =
        cfg.request_mib_values[rng.weighted_index(cfg.request_mib_weights)];
    group.requested[kDimCpu] =
        cfg.request_cpu_values[rng.weighted_index(cfg.request_cpu_weights)];
    group.requested[kDimGpu] =
        cfg.request_gpu_values[rng.weighted_index(cfg.request_gpu_weights)];
    group.nodes = static_cast<std::uint32_t>(
        cfg.node_counts[rng.weighted_index(cfg.node_weights)]);
    group.runtime_log_mean =
        rng.normal(cfg.runtime_log_mean, cfg.runtime_log_sigma);
    for (std::size_t d = 0; d < kMaxResourceDims; ++d) {
      const double ratio = draw_ratio(rng, cfg);
      group.used_base[d] =
          group.requested[d] > 0.0 ? group.requested[d] / ratio : 0.0;
    }
    group.profile = draw_profile(rng, cfg.shape_weights);
    groups.push_back(group);
  }

  util::ZipfDistribution popularity(cfg.group_count,
                                    cfg.group_popularity_exponent);

  // --- emission: monotone clock, diurnal-modulated Poisson gaps ------------
  ScenarioWorkload out;
  out.dims = kMaxResourceDims;
  out.base.name = "cloud-diurnal";
  out.base.jobs.reserve(cfg.job_count);
  out.mr.reserve(cfg.job_count);

  const double amplitude = std::clamp(cfg.diurnal_amplitude, 0.0, 0.95);
  Seconds clock = 0.0;
  for (std::size_t j = 0; j < cfg.job_count; ++j) {
    const double phase = 2.0 * M_PI * clock / cfg.diurnal_period;
    const double rate_factor = 1.0 + amplitude * std::sin(phase);
    clock += rng.exponential(rate_factor / cfg.mean_interarrival);

    const CloudGroup& group = groups[popularity(rng) - 1];

    JobRecord record;
    record.id = static_cast<JobId>(j + 1);
    record.submit = clock;
    record.runtime = std::clamp(
        rng.lognormal(group.runtime_log_mean, 0.3), cfg.runtime_min,
        cfg.runtime_max);
    record.requested_time = record.runtime * rng.uniform(1.0, 3.0);
    record.nodes = group.nodes;
    record.user = group.user;
    record.app = group.app;
    record.status = rng.bernoulli(cfg.intrinsic_failure_fraction)
                        ? JobStatus::kFailed
                        : JobStatus::kCompleted;

    MrJobInfo info;
    info.requested = group.requested;
    info.profile = group.profile;
    for (std::size_t d = 0; d < kMaxResourceDims; ++d) {
      const double jitter = rng.lognormal(0.0, cfg.within_group_jitter);
      info.used_peak[d] = group.requested[d] > 0.0
                              ? std::clamp(group.used_base[d] * jitter,
                                           group.requested[d] * 0.01,
                                           group.requested[d])
                              : 0.0;
    }
    record.requested_mem_mib = info.requested[kDimMem];
    record.used_mem_mib = info.used_peak[kDimMem];

    out.base.jobs.push_back(record);
    out.mr.push_back(info);
  }
  return out;
}

}  // namespace resmatch::trace
