// Heavy-tailed cloud-style workload with diurnal load.
//
// Where the CM5 model reproduces one 1996 MPP trace, this model captures
// the shape of modern multi-tenant clusters: lognormal runtimes with a
// much heavier tail, small node counts, Zipf-popular users, per-dimension
// (memory/CPU/GPU) requests with heavy-tailed over-provisioning, arrival
// rates modulated by a day/night cycle, and within-job usage that ramps
// or steps instead of sitting at peak (trace/footprint.hpp).
//
// Deterministic from the seed: the same config generates the same
// ScenarioWorkload byte for byte, and submit times are emitted in
// non-decreasing order (no sort needed).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/scenario.hpp"

namespace resmatch::trace {

struct CloudModelConfig {
  std::uint64_t seed = 42;

  // --- population ---------------------------------------------------------
  std::size_t job_count = 4000;
  std::size_t group_count = 160;  ///< (user, app, request) similarity groups
  std::size_t user_count = 48;
  double group_popularity_exponent = 1.2;  ///< Zipf over groups

  // --- arrivals: Poisson base rate with a sinusoidal diurnal factor -------
  double mean_interarrival = 30.0;   ///< seconds at the mean rate
  double diurnal_amplitude = 0.6;    ///< rate swing, in [0, 1)
  Seconds diurnal_period = 86400.0;  ///< one simulated day

  // --- per-node requests (memory in MiB; CPU cores; GPUs) -----------------
  std::vector<double> request_mib_values = {32, 24, 16, 12, 8, 4};
  std::vector<double> request_mib_weights = {0.30, 0.15, 0.20,
                                             0.15, 0.12, 0.08};
  std::vector<double> request_cpu_values = {1, 2, 4, 8, 16};
  std::vector<double> request_cpu_weights = {0.25, 0.30, 0.25, 0.15, 0.05};
  std::vector<double> request_gpu_values = {0, 1, 2, 4};
  std::vector<double> request_gpu_weights = {0.70, 0.15, 0.10, 0.05};
  std::vector<double> node_counts = {1, 2, 4, 8, 16, 32};
  std::vector<double> node_weights = {0.40, 0.22, 0.16, 0.12, 0.07, 0.03};

  // --- over-provisioning per dimension (requested / used peak) ------------
  double frac_ratio_ge2 = 0.40;  ///< groups drawing from the Pareto tail
  double pareto_alpha = 1.1;     ///< tail shape beyond ratio 2
  double max_ratio = 64.0;
  double within_group_jitter = 0.08;  ///< per-job usage spread (lognormal σ)

  // --- runtimes (lognormal, heavy tail) ------------------------------------
  double runtime_log_mean = 5.5;  ///< exp(5.5) ≈ 245 s median
  double runtime_log_sigma = 1.6;
  Seconds runtime_min = 5.0;
  Seconds runtime_max = 172800.0;

  // --- footprint shapes (weights over flat/ramp/step/plateau) --------------
  std::vector<double> shape_weights = {0.40, 0.25, 0.15, 0.20};

  /// Fraction of jobs failing for non-resource reasons (implicit-feedback
  /// false positives, paper §2.1).
  double intrinsic_failure_fraction = 0.01;
};

/// Deterministically generate the cloud scenario (dims = 3).
[[nodiscard]] ScenarioWorkload generate_cloud(const CloudModelConfig& config);

}  // namespace resmatch::trace
