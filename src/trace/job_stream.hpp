// Streamed trace access: jobs in arrival order, O(active jobs) memory.
//
// A materialized trace::Workload holds every JobRecord at once — fine at
// 122k jobs, prohibitive at the 10M-job cluster-scale runs the ROADMAP
// targets (~1 GB of records before the simulator does anything). A
// JobStream yields the same records one at a time in submit order with a
// bounded lookahead, so the simulator's peak footprint tracks the number
// of jobs *in the system*, not the trace length.
//
// Equivalence contract: a stream and its materialized counterpart yield
// byte-identical JobRecord sequences (tests/job_stream_test enforces
// this), which is what lets the streamed simulation engine make decisions
// bit-for-bit identical to the materialized one.
#pragma once

#include <fstream>
#include <optional>
#include <string>

#include "trace/cm5_model.hpp"
#include "trace/job_record.hpp"
#include "util/rng.hpp"

namespace resmatch::trace {

/// Pull-based trace source. Records come back in non-decreasing submit
/// order (the simulator rejects violations); streams are rewindable and
/// the replayed sequence is byte-identical.
class JobStream {
 public:
  virtual ~JobStream() = default;

  /// The next job, or nullopt at end of trace.
  [[nodiscard]] virtual std::optional<JobRecord> next() = 0;

  /// Rewind to the first job.
  virtual void reset() = 0;

  /// Number of jobs the stream will yield when known up front; 0 when the
  /// source cannot know without consuming itself (file streams).
  [[nodiscard]] virtual std::size_t size_hint() const = 0;

  [[nodiscard]] virtual const std::string& name() const = 0;
};

/// Adapter over an existing materialized workload (not owned; must
/// outlive the stream). The bridge that lets one simulation engine serve
/// both the simulate(Workload) and simulate(JobStream) entry points.
class VectorJobStream final : public JobStream {
 public:
  explicit VectorJobStream(const Workload& workload)
      : workload_(&workload) {}

  [[nodiscard]] std::optional<JobRecord> next() override {
    if (pos_ >= workload_->jobs.size()) return std::nullopt;
    return workload_->jobs[pos_++];
  }
  void reset() override { pos_ = 0; }
  [[nodiscard]] std::size_t size_hint() const override {
    return workload_->jobs.size();
  }
  [[nodiscard]] const std::string& name() const override {
    return workload_->name;
  }

 private:
  const Workload* workload_;
  std::size_t pos_ = 0;
};

/// On-the-fly CM5 synthetic generation: byte-identical to
/// generate_cm5(config) without ever materializing the trace.
///
/// Construction runs the model twice over the RNG stream: pass 1 builds
/// the group plan and dry-runs emission to learn total work and span —
/// exactly the numbers scale_to_load derives from the materialized
/// vector — then emission restarts from a snapshot of the post-plan RNG
/// and applies the load factor per job. Cost: generation happens twice;
/// memory: O(groups), not O(jobs).
class Cm5JobStream final : public JobStream {
 public:
  explicit Cm5JobStream(Cm5ModelConfig config);

  [[nodiscard]] std::optional<JobRecord> next() override;
  void reset() override;
  [[nodiscard]] std::size_t size_hint() const override {
    return plan_.group_of_job.size();
  }
  [[nodiscard]] const std::string& name() const override { return name_; }

 private:
  Cm5ModelConfig cfg_;
  detail::Cm5Plan plan_;
  util::Rng emit_start_;  ///< RNG state right after the plan was built
  double time_factor_ = 1.0;  ///< scale_to_load's submit-time factor
  std::string name_ = "cm5-synthetic";

  // Emission cursor.
  util::Rng rng_;
  Seconds clock_ = 0.0;
  std::size_t pos_ = 0;
};

/// Line-at-a-time SWF file reader: same parse/skip semantics as
/// trace::read_swf (comments and structurally broken lines are skipped
/// and counted), without holding more than one record.
class SwfJobStream final : public JobStream {
 public:
  /// Throws std::runtime_error when the file cannot be opened.
  explicit SwfJobStream(std::string path);

  [[nodiscard]] std::optional<JobRecord> next() override;
  void reset() override;
  [[nodiscard]] std::size_t size_hint() const override { return 0; }
  [[nodiscard]] const std::string& name() const override { return path_; }

  /// Structurally unusable lines seen so far (grows as the file is read).
  [[nodiscard]] std::size_t skipped() const noexcept { return skipped_; }

 private:
  std::string path_;
  std::ifstream in_;
  std::size_t skipped_ = 0;
};

}  // namespace resmatch::trace
