// Adversarial user model: a submitter who games the estimator from inside
// one similarity group.
//
// The similarity key is (user, app, requested memory), so a user who
// keeps the request constant funnels every submission into the same
// group — and can then steer its learned state. The adversary alternates
// phases: a "padded" phase of lean runs (tiny actual usage) teaches the
// estimator to lower the grant, then a "lean" phase of heavy runs (usage
// near the request) cashes in the lowered grant as a stream of resource
// kills and retries. Risk-aware estimators (quantile margin controller,
// ensemble fallback) should widen under attack and recover once the
// attack stops — the property tests/scenario_test pins via
// QuantileEstimator::margin().
//
// Background traffic keeps the cluster realistically busy so the attack's
// cost shows up in cluster-level metrics, not just the adversary's group.
// Deterministic from the seed; submit times are non-decreasing.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/scenario.hpp"

namespace resmatch::trace {

struct AdversarialConfig {
  std::uint64_t seed = 42;

  std::size_t job_count = 4000;
  /// Every k-th job belongs to the adversary (the rest are background).
  std::size_t adversary_stride = 4;
  /// Submissions per padded/lean phase before the adversary flips.
  std::size_t phase_length = 12;

  // --- the adversary's fixed similarity group -----------------------------
  double adversary_request_mib = 32.0;
  double adversary_cpu = 2.0;
  double adversary_gpu = 0.0;
  std::uint32_t adversary_nodes = 4;
  /// Padded phase: actual usage as a fraction of the request (lean runs
  /// that bait the estimator into lowering the grant).
  double padded_usage_frac = 0.10;
  /// Lean phase: actual usage as a fraction of the request (heavy runs
  /// that turn the lowered grant into kills).
  double lean_usage_frac = 0.95;
  double usage_jitter = 0.02;  ///< lognormal σ on both phases

  // --- background population ----------------------------------------------
  std::size_t background_groups = 80;
  std::size_t user_count = 32;
  std::vector<double> request_mib_values = {24, 16, 12, 8, 4};
  std::vector<double> request_mib_weights = {0.25, 0.25, 0.20, 0.18, 0.12};
  std::vector<double> request_cpu_values = {1, 2, 4};
  std::vector<double> request_cpu_weights = {0.45, 0.35, 0.20};
  std::vector<double> node_counts = {1, 2, 4, 8};
  std::vector<double> node_weights = {0.50, 0.25, 0.15, 0.10};
  double frac_ratio_ge2 = 0.30;
  double pareto_alpha = 1.1;
  double max_ratio = 32.0;

  // --- arrivals / runtimes -------------------------------------------------
  double mean_interarrival = 30.0;
  double runtime_log_mean = 5.0;
  double runtime_log_sigma = 1.0;
  Seconds runtime_min = 5.0;
  Seconds runtime_max = 86400.0;
};

/// Deterministically generate the adversarial scenario (dims = 3; the
/// attack itself lives in the memory dimension).
[[nodiscard]] ScenarioWorkload generate_adversarial(
    const AdversarialConfig& config);

}  // namespace resmatch::trace
