#include "trace/flash_crowd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace resmatch::trace {

namespace {

struct CrowdGroup {
  UserId user = 0;
  AppId app = 0;
  ResourceVector requested{};
  ResourceVector used_base{};
  std::uint32_t nodes = 1;
  double runtime_log_mean = 5.0;
  FootprintProfile profile{};
};

CrowdGroup draw_group(util::Rng& rng, const FlashCrowdConfig& cfg,
                      std::size_t index, bool burst) {
  CrowdGroup group;
  group.user = static_cast<UserId>(
      rng.uniform_int(0, static_cast<std::int64_t>(cfg.user_count) - 1));
  group.app = static_cast<AppId>(index);
  group.requested[kDimMem] =
      cfg.request_mib_values[rng.weighted_index(cfg.request_mib_weights)];
  group.requested[kDimCpu] =
      cfg.request_cpu_values[rng.weighted_index(cfg.request_cpu_weights)];
  group.requested[kDimGpu] =
      cfg.request_gpu_values[rng.weighted_index(cfg.request_gpu_weights)];
  group.nodes = static_cast<std::uint32_t>(
      cfg.node_counts[rng.weighted_index(cfg.node_weights)]);
  group.runtime_log_mean =
      rng.normal(cfg.runtime_log_mean, cfg.runtime_log_sigma) +
      (burst ? std::log(cfg.burst_runtime_factor) : 0.0);
  for (std::size_t d = 0; d < kMaxResourceDims; ++d) {
    double ratio = rng.uniform(1.0, 2.0);
    if (rng.bernoulli(cfg.frac_ratio_ge2)) {
      ratio = std::min(cfg.max_ratio, 2.0 * rng.pareto(1.0, cfg.pareto_alpha));
    }
    group.used_base[d] =
        group.requested[d] > 0.0 ? group.requested[d] / ratio : 0.0;
  }
  switch (rng.weighted_index(cfg.shape_weights)) {
    case 0:
      group.profile.shape = FootprintShape::kFlat;
      break;
    case 1:
      group.profile.shape = FootprintShape::kRamp;
      break;
    case 2:
      group.profile.shape = FootprintShape::kStep;
      break;
    default:
      group.profile.shape = FootprintShape::kPlateau;
      break;
  }
  group.profile.start_frac = rng.uniform(0.2, 0.7);
  group.profile.knee_frac = rng.uniform(0.2, 0.8);
  return group;
}

}  // namespace

ScenarioWorkload generate_flash_crowd(const FlashCrowdConfig& cfg) {
  if (cfg.job_count == 0 || cfg.background_groups == 0 ||
      cfg.burst_groups == 0) {
    throw std::invalid_argument("generate_flash_crowd: empty population");
  }
  util::Rng rng(cfg.seed);

  std::vector<CrowdGroup> background;
  background.reserve(cfg.background_groups);
  for (std::size_t g = 0; g < cfg.background_groups; ++g) {
    background.push_back(draw_group(rng, cfg, g, /*burst=*/false));
  }
  std::vector<CrowdGroup> burst;
  burst.reserve(cfg.burst_groups);
  for (std::size_t g = 0; g < cfg.burst_groups; ++g) {
    burst.push_back(
        draw_group(rng, cfg, cfg.background_groups + g, /*burst=*/true));
  }

  ScenarioWorkload out;
  out.dims = kMaxResourceDims;
  out.base.name = "flash-crowd";
  out.base.jobs.reserve(cfg.job_count);
  out.mr.reserve(cfg.job_count);

  Seconds clock = 0.0;
  Seconds next_burst = cfg.burst_spacing;
  for (std::size_t j = 0; j < cfg.job_count; ++j) {
    const bool in_burst =
        clock >= next_burst && clock < next_burst + cfg.burst_duration;
    if (clock >= next_burst + cfg.burst_duration) {
      next_burst = clock + cfg.burst_spacing;
    }
    const double rate =
        (in_burst ? cfg.burst_rate_factor : 1.0) / cfg.mean_interarrival;
    clock += rng.exponential(rate);

    const bool crowd = in_burst && rng.bernoulli(cfg.burst_affinity);
    const CrowdGroup& group =
        crowd ? burst[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(burst.size()) - 1))]
              : background[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(background.size()) - 1))];

    JobRecord record;
    record.id = static_cast<JobId>(j + 1);
    record.submit = clock;
    record.runtime = std::clamp(rng.lognormal(group.runtime_log_mean, 0.25),
                                cfg.runtime_min, cfg.runtime_max);
    record.requested_time = record.runtime * rng.uniform(1.0, 3.0);
    record.nodes = group.nodes;
    record.user = group.user;
    record.app = group.app;
    record.status = rng.bernoulli(cfg.intrinsic_failure_fraction)
                        ? JobStatus::kFailed
                        : JobStatus::kCompleted;

    MrJobInfo info;
    info.requested = group.requested;
    info.profile = group.profile;
    for (std::size_t d = 0; d < kMaxResourceDims; ++d) {
      const double jitter = rng.lognormal(0.0, cfg.within_group_jitter);
      info.used_peak[d] = group.requested[d] > 0.0
                              ? std::clamp(group.used_base[d] * jitter,
                                           group.requested[d] * 0.01,
                                           group.requested[d])
                              : 0.0;
    }
    record.requested_mem_mib = info.requested[kDimMem];
    record.used_mem_mib = info.used_peak[kDimMem];

    out.base.jobs.push_back(record);
    out.mr.push_back(info);
  }
  return out;
}

}  // namespace resmatch::trace
