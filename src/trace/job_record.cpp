#include "trace/job_record.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace resmatch::trace {

bool is_simulatable(const JobRecord& job) noexcept {
  return job.submit >= 0.0 && job.runtime > 0.0 && job.nodes >= 1 &&
         job.requested_mem_mib > 0.0 && job.used_mem_mib > 0.0 &&
         job.used_mem_mib <= job.requested_mem_mib + 1e-9;
}

std::string to_string(const JobRecord& job) {
  return util::format(
      "job %llu: submit=%.0fs run=%.0fs nodes=%u req=%.2fMiB used=%.2fMiB "
      "user=%u app=%u",
      static_cast<unsigned long long>(job.id), job.submit, job.runtime,
      job.nodes, job.requested_mem_mib, job.used_mem_mib, job.user, job.app);
}

double Workload::total_work() const noexcept {
  double total = 0.0;
  for (const auto& job : jobs) total += job.work();
  return total;
}

Seconds Workload::span() const noexcept {
  if (jobs.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(
      jobs.begin(), jobs.end(),
      [](const JobRecord& a, const JobRecord& b) { return a.submit < b.submit; });
  return hi->submit - lo->submit;
}

double Workload::offered_load(std::size_t machines) const noexcept {
  const Seconds s = span();
  if (s <= 0.0 || machines == 0) return 0.0;
  return total_work() / (static_cast<double>(machines) * s);
}

}  // namespace resmatch::trace
