#include "trace/adversarial.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace resmatch::trace {

namespace {

struct BackgroundGroup {
  UserId user = 0;
  AppId app = 0;
  ResourceVector requested{};
  ResourceVector used_base{};
  std::uint32_t nodes = 1;
  double runtime_log_mean = 5.0;
};

}  // namespace

ScenarioWorkload generate_adversarial(const AdversarialConfig& cfg) {
  if (cfg.job_count == 0 || cfg.background_groups == 0 ||
      cfg.adversary_stride == 0 || cfg.phase_length == 0) {
    throw std::invalid_argument("generate_adversarial: empty population");
  }
  util::Rng rng(cfg.seed);

  // User 0 / app 0 is reserved for the adversary so every one of their
  // submissions lands in the same similarity group.
  std::vector<BackgroundGroup> background;
  background.reserve(cfg.background_groups);
  for (std::size_t g = 0; g < cfg.background_groups; ++g) {
    BackgroundGroup group;
    group.user = static_cast<UserId>(
        1 + rng.uniform_int(0, static_cast<std::int64_t>(cfg.user_count) - 1));
    group.app = static_cast<AppId>(g + 1);
    group.requested[kDimMem] =
        cfg.request_mib_values[rng.weighted_index(cfg.request_mib_weights)];
    group.requested[kDimCpu] =
        cfg.request_cpu_values[rng.weighted_index(cfg.request_cpu_weights)];
    group.requested[kDimGpu] = 0.0;
    group.nodes = static_cast<std::uint32_t>(
        cfg.node_counts[rng.weighted_index(cfg.node_weights)]);
    group.runtime_log_mean =
        rng.normal(cfg.runtime_log_mean, cfg.runtime_log_sigma);
    for (std::size_t d = 0; d < kMaxResourceDims; ++d) {
      double ratio = rng.uniform(1.0, 2.0);
      if (rng.bernoulli(cfg.frac_ratio_ge2)) {
        ratio =
            std::min(cfg.max_ratio, 2.0 * rng.pareto(1.0, cfg.pareto_alpha));
      }
      group.used_base[d] =
          group.requested[d] > 0.0 ? group.requested[d] / ratio : 0.0;
    }
    background.push_back(group);
  }

  ScenarioWorkload out;
  out.dims = kMaxResourceDims;
  out.base.name = "adversarial";
  out.base.jobs.reserve(cfg.job_count);
  out.mr.reserve(cfg.job_count);

  Seconds clock = 0.0;
  std::size_t adversary_jobs = 0;
  for (std::size_t j = 0; j < cfg.job_count; ++j) {
    clock += rng.exponential(1.0 / cfg.mean_interarrival);

    JobRecord record;
    record.id = static_cast<JobId>(j + 1);
    record.submit = clock;
    record.status = JobStatus::kCompleted;

    MrJobInfo info;  // adversary and background both run flat footprints

    if (j % cfg.adversary_stride == 0) {
      // The adversary: constant request, alternating padded/lean phases.
      const bool padded = (adversary_jobs / cfg.phase_length) % 2 == 0;
      ++adversary_jobs;
      const double frac = padded ? cfg.padded_usage_frac : cfg.lean_usage_frac;
      record.user = 0;
      record.app = 0;
      record.nodes = cfg.adversary_nodes;
      record.runtime = std::clamp(rng.lognormal(cfg.runtime_log_mean, 0.2),
                                  cfg.runtime_min, cfg.runtime_max);
      info.requested = ResourceVector(cfg.adversary_request_mib,
                                      cfg.adversary_cpu, cfg.adversary_gpu);
      for (std::size_t d = 0; d < kMaxResourceDims; ++d) {
        const double jitter = rng.lognormal(0.0, cfg.usage_jitter);
        info.used_peak[d] =
            info.requested[d] > 0.0
                ? std::clamp(info.requested[d] * frac * jitter,
                             info.requested[d] * 0.01, info.requested[d])
                : 0.0;
      }
    } else {
      const BackgroundGroup& group =
          background[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(background.size()) - 1))];
      record.user = group.user;
      record.app = group.app;
      record.nodes = group.nodes;
      record.runtime = std::clamp(rng.lognormal(group.runtime_log_mean, 0.25),
                                  cfg.runtime_min, cfg.runtime_max);
      info.requested = group.requested;
      for (std::size_t d = 0; d < kMaxResourceDims; ++d) {
        const double jitter = rng.lognormal(0.0, 0.05);
        info.used_peak[d] = group.requested[d] > 0.0
                                ? std::clamp(group.used_base[d] * jitter,
                                             group.requested[d] * 0.01,
                                             group.requested[d])
                                : 0.0;
      }
    }
    record.requested_time = record.runtime * rng.uniform(1.0, 3.0);
    record.requested_mem_mib = info.requested[kDimMem];
    record.used_mem_mib = info.used_peak[kDimMem];

    out.base.jobs.push_back(record);
    out.mr.push_back(info);
  }
  return out;
}

}  // namespace resmatch::trace
