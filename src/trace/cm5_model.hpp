// Calibrated synthetic stand-in for the LANL CM5 workload trace.
//
// The paper's experiments consume the real LANL CM5 log from the Parallel
// Workloads Archive (122,055 jobs over ~2 years on a 1024-node CM-5 with
// 32 MiB per node). That file is not redistributable here, so this module
// generates a synthetic trace with the same schema and — crucially — the
// same published statistics the paper's results depend on:
//
//   * ~122k jobs after dropping the six 1024-node jobs (paper §3.1);
//   * ~9,885 similarity groups under the (user, app, requested-memory)
//     key (paper §2.2), with a heavy-tailed size distribution in which
//     roughly 19.4% of groups have ≥10 jobs yet cover ~83% of all jobs
//     (paper Figure 3 and footnote 2);
//   * an over-provisioning ratio (requested/used memory) histogram with
//     ~32.8% of jobs at ratio ≥2 and a roughly log-linear decay out to two
//     orders of magnitude (paper Figure 1, R² ≈ 0.69);
//   * tight within-group usage ranges for most groups, with the large-gain
//     groups also being highly similar (paper Figure 4);
//   * CM5 partition sizes (powers of two, 32..512 nodes) and a 32 MiB
//     per-node request ceiling.
//
// Every knob is exposed in Cm5ModelConfig so tests can generate small
// traces quickly and ablations can distort individual properties.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/job_record.hpp"

namespace resmatch::util {
class Rng;
}

namespace resmatch::trace {

/// Tunable parameters of the synthetic CM5 workload model. Defaults are
/// the calibration that reproduces the paper's published statistics.
struct Cm5ModelConfig {
  std::uint64_t seed = 42;

  // --- population -------------------------------------------------------
  std::size_t job_count = 122049;   ///< 122,055 minus six 1024-node jobs
  std::size_t group_count = 9885;   ///< paper §2.2
  std::size_t user_count = 213;     ///< LANL CM5 user population

  // --- group size distribution (discrete power law) ----------------------
  double group_size_exponent = 1.6;  ///< P(size=k) ∝ k^-γ
  std::size_t group_size_max = 500;

  // --- over-provisioning ratio (requested / max used, per group) ---------
  /// Probability that a group draws from the heavy over-provisioning tail
  /// (ratio >= 2). Within-group usage spread pushes additional jobs past
  /// 2x, so this is calibrated BELOW the paper's 32.8% job-level figure;
  /// the realized job fraction lands at ~32.8% (asserted in tests).
  double frac_ratio_ge2 = 0.243;
  double pareto_alpha = 0.9;       ///< tail shape beyond ratio 2
  double max_ratio = 130.0;        ///< "two orders of magnitude"
  /// Minimum modest-branch ratio for full-node (32 MiB) requests: keeps
  /// their usage below 32/full_node_min_ratio ≈ 23.7 MiB, so the paper's
  /// first probe point (the 24 MiB pool) rarely under-provisions.
  double full_node_min_ratio = 1.35;

  // --- within-group similarity range (max used / min used) ---------------
  /// Fraction of groups whose members use EXACTLY the same memory —
  /// repeated submissions of the same deterministic program. These groups
  /// are the reason the paper's estimator almost never fails (§3.2).
  double identical_usage_fraction = 0.55;
  double tight_range_mean = 0.12;   ///< remaining groups: 1 + Exp(mean)
  double loose_group_fraction = 0.10;
  double loose_range_mean = 1.5;
  double range_cap = 10.0;

  // --- per-node requested memory (MiB) and CM5 partitions ----------------
  // Weighted toward full-node (32 MiB) requests, as on the real CM5 where
  // requesting the whole node's memory was the lazy default.
  std::vector<double> request_mib_values = {32, 24, 16, 12, 8, 4, 2, 1};
  std::vector<double> request_mib_weights = {0.55, 0.06, 0.12, 0.05,
                                             0.10, 0.07, 0.03, 0.02};
  std::vector<double> partition_sizes = {32, 64, 128, 256, 512};
  std::vector<double> partition_weights = {0.42, 0.27, 0.16, 0.10, 0.05};

  // --- runtimes (log-normal, seconds) -------------------------------------
  double runtime_log_mean = 6.4;    ///< exp(6.4) ≈ 600 s group median
  double runtime_log_sigma = 1.0;
  double runtime_jitter_sigma = 0.3;  ///< within-group runtime variation
  Seconds runtime_min = 10.0;
  Seconds runtime_max = 86400.0;

  // --- arrivals ------------------------------------------------------------
  /// Poisson arrivals; span chosen so offered load on `nominal_machines`
  /// is roughly `nominal_load` (experiments rescale exactly afterwards).
  std::size_t nominal_machines = 1024;
  double nominal_load = 0.7;

  // --- fault injection ------------------------------------------------------
  /// Fraction of jobs that fail for reasons unrelated to resources (faulty
  /// program/machine). These produce the implicit-feedback false positives
  /// discussed in paper §2.1. 0 reproduces the paper's clean setup.
  double intrinsic_failure_fraction = 0.0;

  /// Fraction of groups whose (user, app) pair is shared with another
  /// group that differs only in requested memory — exercises the third
  /// component of the similarity key.
  double shared_app_fraction = 0.25;
};

/// Deterministically generate a synthetic workload from the config.
[[nodiscard]] Workload generate_cm5(const Cm5ModelConfig& config);

/// The scaled-down configuration generate_cm5_small materializes: ~12.3
/// jobs per group, partitions shrunk 8x to match the 128-machine test
/// cluster. Exposed so streamed generation (trace::Cm5JobStream) can run
/// the exact same model.
[[nodiscard]] Cm5ModelConfig cm5_small_config(std::uint64_t seed,
                                              std::size_t job_count = 4000);

/// Convenience: a small trace for unit tests (a few thousand jobs),
/// preserving the calibration's distributional shape.
[[nodiscard]] Workload generate_cm5_small(std::uint64_t seed,
                                          std::size_t job_count = 4000);

namespace detail {

/// One similarity group with all of its pre-emission randomness spent.
struct Cm5GroupSpec {
  UserId user = 0;
  AppId app = 0;
  MiB requested_mib = 32.0;
  MiB max_used_mib = 32.0;
  double range = 1.0;  ///< max used / min used within the group
  std::uint32_t nodes = 32;
  double runtime_log_mean = 6.0;
  std::size_t size = 1;
};

/// The deterministic prefix of CM5 generation: the group population and
/// the shuffled job -> group assignment. Building it consumes exactly the
/// RNG draws generate_cm5 spends before its emission loop, so a caller
/// holding the RNG afterwards can emit jobs one at a time and reproduce
/// the materialized trace bit for bit.
struct Cm5Plan {
  std::vector<Cm5GroupSpec> groups;
  std::vector<std::size_t> group_of_job;
};

[[nodiscard]] Cm5Plan build_cm5_plan(const Cm5ModelConfig& cfg,
                                     util::Rng& rng);

/// Emit job `index` (0-based) of the plan: advances `clock` by the arrival
/// gap and spends exactly the per-job RNG draws of generate_cm5's loop.
/// The submit time is pre-scale — callers apply the load factor the same
/// way trace::scale_to_load does.
[[nodiscard]] JobRecord emit_cm5_job(const Cm5ModelConfig& cfg,
                                     const Cm5GroupSpec& spec,
                                     std::size_t index, Seconds& clock,
                                     util::Rng& rng);

}  // namespace detail

}  // namespace resmatch::trace
