#include "trace/job_stream.hpp"

#include <stdexcept>
#include <utility>

#include "trace/swf.hpp"
#include "util/strings.hpp"

namespace resmatch::trace {

Cm5JobStream::Cm5JobStream(Cm5ModelConfig config)
    : cfg_(std::move(config)), emit_start_(cfg_.seed), rng_(cfg_.seed) {
  util::Rng rng(cfg_.seed);
  plan_ = detail::build_cm5_plan(cfg_, rng);
  emit_start_ = rng;

  // Dry-run emission: offered load needs total work and submit span, which
  // the materialized path reads off the finished vector. Sum in emission
  // order and take first/last submit (the clock is non-decreasing), so the
  // factor below is bit-identical to scale_to_load's.
  double total_work = 0.0;
  Seconds first = 0.0;
  Seconds last = 0.0;
  Seconds clock = 0.0;
  const std::size_t n = plan_.group_of_job.size();
  for (std::size_t i = 0; i < n; ++i) {
    const JobRecord job = detail::emit_cm5_job(
        cfg_, plan_.groups[plan_.group_of_job[i]], i, clock, rng);
    total_work += job.work();
    if (i == 0) first = job.submit;
    last = job.submit;
  }
  const Seconds span = last - first;
  double current = 0.0;
  if (span > 0.0 && cfg_.nominal_machines > 0 && n > 0) {
    current =
        total_work / (static_cast<double>(cfg_.nominal_machines) * span);
  }
  if (current > 0.0 && cfg_.nominal_load > 0.0) {
    time_factor_ = current / cfg_.nominal_load;
  }
  reset();
}

std::optional<JobRecord> Cm5JobStream::next() {
  if (pos_ >= plan_.group_of_job.size()) return std::nullopt;
  JobRecord job = detail::emit_cm5_job(
      cfg_, plan_.groups[plan_.group_of_job[pos_]], pos_, clock_, rng_);
  // Same per-record multiply scale_arrivals applies to the vector.
  job.submit *= time_factor_;
  ++pos_;
  return job;
}

void Cm5JobStream::reset() {
  rng_ = emit_start_;
  clock_ = 0.0;
  pos_ = 0;
}

SwfJobStream::SwfJobStream(std::string path) : path_(std::move(path)) {
  in_.open(path_);
  if (!in_) throw std::runtime_error("cannot open " + path_);
}

std::optional<JobRecord> SwfJobStream::next() {
  std::string line;
  while (std::getline(in_, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == ';') continue;
    auto job = parse_swf_line(trimmed);
    if (!job) {
      ++skipped_;
      continue;
    }
    if (job.value().runtime <= 0.0 || job.value().nodes == 0) {
      ++skipped_;
      continue;
    }
    return std::move(job).value();
  }
  return std::nullopt;
}

void SwfJobStream::reset() {
  in_.close();
  in_.clear();
  in_.open(path_);
  if (!in_) throw std::runtime_error("cannot reopen " + path_);
  skipped_ = 0;
}

}  // namespace resmatch::trace
