// Standard Workload Format (SWF) reader/writer.
//
// SWF is the Parallel Workloads Archive format the LANL CM5 trace ships in:
// one job per line, 18 whitespace-separated integer fields, ';' comments,
// -1 for unknown. Memory fields are kilobytes per processor in SWF; we
// convert to MiB per node on read and back on write.
//
// Field map (1-based, per the PWA definition):
//   1 job number        7 used memory (KB/proc)   13 group number
//   2 submit time       8 requested processors    14 application number
//   3 wait time         9 requested time          15 queue number
//   4 run time         10 requested memory        16 partition number
//   5 allocated procs  11 status                  17 preceding job
//   6 avg cpu time     12 user number             18 think time
#pragma once

#include <iosfwd>
#include <string>

#include "trace/job_record.hpp"
#include "util/expected.hpp"

namespace resmatch::trace {

/// Read a workload from an SWF stream. Jobs that are structurally broken
/// (negative runtime, zero processors) are skipped and counted; a trace
/// where *every* line fails to parse is an error.
struct SwfReadResult {
  Workload workload;
  std::size_t skipped = 0;  ///< structurally unusable lines
};

[[nodiscard]] util::Expected<SwfReadResult> read_swf(std::istream& in,
                                                     std::string name);
[[nodiscard]] util::Expected<SwfReadResult> read_swf_file(
    const std::string& path);

/// Write a workload as SWF. Unknown fields are emitted as -1.
void write_swf(std::ostream& out, const Workload& workload);
void write_swf_file(const std::string& path, const Workload& workload);

/// Parse one SWF job line (no comment handling). Exposed for tests.
[[nodiscard]] util::Expected<JobRecord> parse_swf_line(std::string_view line);

/// Render one job as an SWF line (18 fields, no newline).
[[nodiscard]] std::string format_swf_line(const JobRecord& job);

/// KB-per-processor <-> MiB-per-node conversions used at the SWF boundary.
[[nodiscard]] constexpr double kb_to_mib(double kb) noexcept {
  return kb / 1024.0;
}
[[nodiscard]] constexpr double mib_to_kb(double mib) noexcept {
  return mib * 1024.0;
}

}  // namespace resmatch::trace
