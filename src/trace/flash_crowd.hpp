// Flash-crowd workload: a calm baseline punctuated by bursts where the
// arrival rate multiplies and submissions concentrate on a handful of
// similarity groups (many users hammering the same application at once).
//
// The burst groups are where estimation matters most under pressure: the
// estimator has a deep history for them — lowered grants open the small
// machines precisely when the queue explodes — but a mistake is amplified
// across the whole crowd. Deterministic from the seed; submit times are
// emitted in non-decreasing order.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/scenario.hpp"

namespace resmatch::trace {

struct FlashCrowdConfig {
  std::uint64_t seed = 42;

  std::size_t job_count = 4000;
  std::size_t background_groups = 120;
  std::size_t burst_groups = 4;  ///< the flash crowd's few hot groups
  std::size_t user_count = 48;

  // --- arrivals -----------------------------------------------------------
  double mean_interarrival = 30.0;  ///< seconds, outside bursts
  double burst_rate_factor = 12.0;  ///< rate multiplier inside a burst
  /// A burst begins whenever this many seconds of calm have elapsed since
  /// the last one ended, and lasts burst_duration seconds.
  Seconds burst_spacing = 43200.0;
  Seconds burst_duration = 1800.0;
  /// Probability an in-burst arrival belongs to a burst group.
  double burst_affinity = 0.85;

  // --- requests / runtimes -------------------------------------------------
  std::vector<double> request_mib_values = {32, 24, 16, 8, 4};
  std::vector<double> request_mib_weights = {0.30, 0.20, 0.25, 0.15, 0.10};
  std::vector<double> request_cpu_values = {1, 2, 4, 8};
  std::vector<double> request_cpu_weights = {0.35, 0.30, 0.25, 0.10};
  std::vector<double> request_gpu_values = {0, 1, 2};
  std::vector<double> request_gpu_weights = {0.80, 0.12, 0.08};
  std::vector<double> node_counts = {1, 2, 4, 8};
  std::vector<double> node_weights = {0.50, 0.25, 0.15, 0.10};
  double frac_ratio_ge2 = 0.35;
  double pareto_alpha = 1.1;
  double max_ratio = 48.0;
  double within_group_jitter = 0.06;
  double runtime_log_mean = 5.0;
  double runtime_log_sigma = 1.2;
  Seconds runtime_min = 5.0;
  Seconds runtime_max = 86400.0;

  /// Burst jobs are short and uniform (the crowd runs one application):
  /// their runtime median is scaled by this factor.
  double burst_runtime_factor = 0.25;

  std::vector<double> shape_weights = {0.45, 0.20, 0.15, 0.20};
  double intrinsic_failure_fraction = 0.005;
};

/// Deterministically generate the flash-crowd scenario (dims = 3).
[[nodiscard]] ScenarioWorkload generate_flash_crowd(
    const FlashCrowdConfig& config);

}  // namespace resmatch::trace
