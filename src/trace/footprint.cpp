#include "trace/footprint.hpp"

#include <algorithm>

namespace resmatch::trace {

std::string_view to_string(FootprintShape shape) noexcept {
  switch (shape) {
    case FootprintShape::kFlat:
      return "flat";
    case FootprintShape::kRamp:
      return "ramp";
    case FootprintShape::kStep:
      return "step";
    case FootprintShape::kPlateau:
      return "plateau";
  }
  return "unknown";
}

double FootprintProfile::usage_at(Seconds elapsed, Seconds runtime,
                                  double peak) const noexcept {
  if (shape == FootprintShape::kFlat) return peak;
  if (runtime <= 0.0 || elapsed >= runtime) return peak;
  const double x = std::max(0.0, elapsed / runtime);
  const double s = std::clamp(start_frac, 0.0, 1.0);
  const double k = std::clamp(knee_frac, 1e-9, 1.0);
  double frac = 1.0;
  switch (shape) {
    case FootprintShape::kFlat:
      frac = 1.0;
      break;
    case FootprintShape::kRamp:
      frac = s + (1.0 - s) * x;
      break;
    case FootprintShape::kStep:
      frac = x < k ? s : 1.0;
      break;
    case FootprintShape::kPlateau:
      frac = x < k ? s + (1.0 - s) * (x / k) : 1.0;
      break;
  }
  return frac * peak;
}

std::optional<Seconds> FootprintProfile::first_crossing(
    double grant, Seconds runtime, double peak) const noexcept {
  if (shape == FootprintShape::kFlat) return std::nullopt;
  if (peak <= grant) return std::nullopt;  // the grant covers the peak
  if (runtime <= 0.0 || peak <= 0.0) return 0.0;
  const double s = std::clamp(start_frac, 0.0, 1.0);
  const double k = std::clamp(knee_frac, 1e-9, 1.0);
  const double g = std::max(0.0, grant / peak);  // target fraction of peak
  if (s > g) return 0.0;  // over the grant from the first instant
  double x = 1.0;
  switch (shape) {
    case FootprintShape::kRamp:
      x = (1.0 - s) <= 0.0 ? 0.0 : (g - s) / (1.0 - s);
      break;
    case FootprintShape::kStep:
      x = k;
      break;
    case FootprintShape::kPlateau:
      x = (1.0 - s) <= 0.0 ? 0.0 : std::min(k, k * (g - s) / (1.0 - s));
      break;
    case FootprintShape::kFlat:
      break;  // unreachable: handled above
  }
  return std::clamp(x, 0.0, 1.0) * runtime;
}

}  // namespace resmatch::trace
