// Workload transforms: load scaling, filtering, truncation.
//
// The paper sweeps offered load by replaying the same trace faster or
// slower (the standard Feitelson methodology); these helpers implement
// that and the trace surgery the paper describes (removing the six
// full-1024-node CM5 jobs so the heterogeneous cluster can host the rest).
#pragma once

#include <cstdint>
#include <functional>

#include "trace/job_record.hpp"

namespace resmatch::trace {

/// Multiply all submit times by `factor` (>1 stretches = lower load,
/// <1 compresses = higher load). Runtimes are untouched.
[[nodiscard]] Workload scale_arrivals(Workload workload, double factor);

/// Rescale arrivals so the offered load against `machines` nodes equals
/// `target_load`. No-op on empty traces or zero demand.
[[nodiscard]] Workload scale_to_load(Workload workload, std::size_t machines,
                                     double target_load);

/// Keep only jobs satisfying the predicate; ids are preserved.
[[nodiscard]] Workload filter(Workload workload,
                              const std::function<bool(const JobRecord&)>& keep);

/// Drop jobs requiring more than `max_nodes` machines (the paper removes
/// the six 1024-node CM5 jobs this way).
[[nodiscard]] Workload drop_wide_jobs(Workload workload,
                                      std::uint32_t max_nodes);

/// Keep the first `n` jobs in submit order.
[[nodiscard]] Workload truncate(Workload workload, std::size_t n);

/// Sort by submit time (stable), which simulators require.
[[nodiscard]] Workload sort_by_submit(Workload workload);

/// Split chronologically: the first `fraction` of jobs (by submit order)
/// become the training trace, the rest the evaluation trace. This is the
/// paper's §2.2 offline customization split — historical submissions with
/// explicit feedback train the estimator before it goes live.
struct TrainTestSplit {
  Workload train;
  Workload test;
};
[[nodiscard]] TrainTestSplit split_by_time(Workload workload,
                                           double fraction);

}  // namespace resmatch::trace
