#include "trace/cm5_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <numbers>
#include <numeric>

#include "trace/transforms.hpp"
#include "util/rng.hpp"

namespace resmatch::trace {

namespace {

using util::Rng;
using GroupSpec = detail::Cm5GroupSpec;

/// Sample group sizes from the truncated discrete power law and adjust so
/// they sum exactly to job_count. The adjustment preserves the shape: a
/// deficit is spread one job at a time over random groups; an excess is
/// trimmed from the largest groups first (they absorb it invisibly).
std::vector<std::size_t> sample_group_sizes(const Cm5ModelConfig& cfg,
                                            Rng& rng) {
  // Build P(size = k) ∝ k^-γ for k in [1, max].
  std::vector<double> weights(cfg.group_size_max);
  for (std::size_t k = 1; k <= cfg.group_size_max; ++k) {
    weights[k - 1] =
        std::pow(static_cast<double>(k), -cfg.group_size_exponent);
  }
  std::vector<std::size_t> sizes(cfg.group_count);
  std::size_t total = 0;
  for (auto& s : sizes) {
    s = rng.weighted_index(weights) + 1;
    total += s;
  }
  // Adjust to the exact job count.
  while (total < cfg.job_count) {
    auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(sizes.size()) - 1));
    ++sizes[idx];
    ++total;
  }
  // Trim the excess from the largest groups first. This reproduces, in
  // O(n + max size), exactly what repeatedly decrementing the first
  // maximum would do: each value level is drained in index order, so the
  // end state caps every size at a threshold T with the first `r` groups
  // (by index) at or above T trimmed one step further. The naive loop is
  // O(excess * group_count) and dominates plan building at cluster scale.
  if (total > cfg.job_count) {
    std::size_t excess = total - cfg.job_count;
    const std::size_t vmax = *std::max_element(sizes.begin(), sizes.end());
    std::vector<std::size_t> cnt(vmax + 1, 0);
    for (const auto s : sizes) ++cnt[s];
    std::size_t level = vmax;  // current top value
    std::size_t at_level = 0;  // groups currently sitting at `level`
    std::size_t partial = 0;   // groups at `level` trimmed one step further
    while (excess > 0 && level > 1) {
      at_level += cnt[level];
      if (excess >= at_level) {
        excess -= at_level;  // the whole level drops to level - 1
        --level;
      } else {
        partial = excess;  // first `partial` groups at `level` drop one more
        excess = 0;
      }
    }
    // `excess > 0` here means every group is down to one job — the naive
    // loop would break with the same leftover.
    for (auto& s : sizes) {
      if (s < level) continue;
      s = level;
      if (partial > 0) {
        --s;
        --partial;
      }
    }
  }
  return sizes;
}

/// Draw a group's over-provisioning ratio (requested / max used).
///
/// Full-node (32 MiB) requests are the "default" users who never measured
/// their needs; their modest branch starts at `full_node_min_ratio` so
/// their usage sits clearly below the request. This matches the LANL CM5
/// behaviour the paper implies: the successive-approximation probe (first
/// stop 32/2 = 16, rounded up to the second pool's capacity) almost never
/// lands below actual usage, hence the reported ~0.01% failure rate.
double sample_ratio(const Cm5ModelConfig& cfg, Rng& rng, bool full_node) {
  if (!rng.bernoulli(cfg.frac_ratio_ge2)) {
    // Modest over-provisioning: log-uniform in [lo, 2).
    const double lo = full_node ? cfg.full_node_min_ratio : 1.0;
    return lo * std::exp(rng.uniform() * std::log(2.0 / lo));
  }
  // Heavy tail beyond 2x: shifted Pareto, resampled into [2, max_ratio].
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double r = 2.0 * rng.pareto(1.0, cfg.pareto_alpha);
    if (r <= cfg.max_ratio) return r;
  }
  return cfg.max_ratio;
}

/// Draw a group's similarity range (max used / min used within the group).
double sample_range(const Cm5ModelConfig& cfg, Rng& rng) {
  if (rng.bernoulli(cfg.identical_usage_fraction)) return 1.0;
  const double mean = rng.bernoulli(cfg.loose_group_fraction)
                          ? cfg.loose_range_mean
                          : cfg.tight_range_mean;
  return std::min(cfg.range_cap, 1.0 + rng.exponential(1.0 / mean));
}

}  // namespace

namespace detail {

Cm5Plan build_cm5_plan(const Cm5ModelConfig& cfg, Rng& rng) {
  assert(cfg.job_count >= cfg.group_count);
  assert(cfg.request_mib_values.size() == cfg.request_mib_weights.size());
  assert(cfg.partition_sizes.size() == cfg.partition_weights.size());

  const auto sizes = sample_group_sizes(cfg, rng);

  // Zipf over users: a few heavy users own most submissions, as in real
  // traces.
  util::ZipfDistribution user_dist(cfg.user_count, 1.1);

  // Track (user, app) pairs so a fraction of groups can share an app while
  // differing in requested memory (exercising the 3-component key).
  std::map<std::pair<UserId, AppId>, std::vector<double>> apps_in_use;
  std::map<UserId, AppId> next_app;

  std::vector<GroupSpec> groups;
  groups.reserve(cfg.group_count);
  for (std::size_t g = 0; g < cfg.group_count; ++g) {
    GroupSpec spec;
    spec.size = sizes[g];
    spec.user = static_cast<UserId>(user_dist(rng));

    spec.requested_mib =
        cfg.request_mib_values[rng.weighted_index(cfg.request_mib_weights)];

    // Choose the app: usually fresh, sometimes shared with an existing
    // group of the same user (forcing a distinct requested memory so the
    // groups stay disjoint under the full key).
    bool shared = false;
    if (rng.bernoulli(cfg.shared_app_fraction)) {
      // Only consider the first app of this user: the map is ordered by
      // (user, app), so that entry is the lower bound of {user, 0}. A
      // front-to-back scan here is O(total apps) per group, which turns
      // plan building quadratic at cluster-scale group counts.
      const auto it =
          apps_in_use.lower_bound(std::pair<UserId, AppId>{spec.user, 0});
      if (it != apps_in_use.end() && it->first.first == spec.user) {
        std::vector<double>& mems = it->second;
        const bool mem_taken =
            std::find(mems.begin(), mems.end(), spec.requested_mib) !=
            mems.end();
        if (!mem_taken) {
          spec.app = it->first.second;
          mems.push_back(spec.requested_mib);
          shared = true;
        }
      }
    }
    if (!shared) {
      spec.app = next_app[spec.user]++;
      apps_in_use[{spec.user, spec.app}].push_back(spec.requested_mib);
    }

    const double ratio =
        sample_ratio(cfg, rng, spec.requested_mib >= 32.0);
    spec.max_used_mib = spec.requested_mib / ratio;
    // Keep usage physically meaningful (at least ~50 KiB per node).
    spec.max_used_mib = std::max(spec.max_used_mib, 0.05);
    spec.range = sample_range(cfg, rng);

    spec.nodes = static_cast<std::uint32_t>(
        cfg.partition_sizes[rng.weighted_index(cfg.partition_weights)]);
    spec.runtime_log_mean =
        rng.normal(cfg.runtime_log_mean, cfg.runtime_log_sigma);
    groups.push_back(spec);
  }

  // Emit jobs: each group contributes `size` submissions whose order in
  // the global arrival sequence is randomized, so a group's submissions
  // interleave with everyone else's across the whole trace span — the
  // estimator sees groups "fill in" over time, as in the real log.
  std::vector<std::size_t> group_of_job;
  group_of_job.reserve(cfg.job_count);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_of_job.insert(group_of_job.end(), groups[g].size, g);
  }
  // Fisher-Yates shuffle with our deterministic RNG.
  for (std::size_t i = group_of_job.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(group_of_job[i - 1], group_of_job[j]);
  }

  return {std::move(groups), std::move(group_of_job)};
}

JobRecord emit_cm5_job(const Cm5ModelConfig& cfg, const Cm5GroupSpec& spec,
                       std::size_t index, Seconds& clock, Rng& rng) {
  JobRecord job;
  job.id = static_cast<JobId>(index + 1);
  clock += rng.exponential(1.0);
  job.submit = clock;
  job.user = spec.user;
  job.app = spec.app;
  job.nodes = spec.nodes;
  job.requested_mem_mib = spec.requested_mib;
  // Usage is log-uniform within [max_used / range, max_used], clamped so
  // no single job exceeds the configured over-provisioning ceiling.
  job.used_mem_mib =
      spec.max_used_mib / std::pow(spec.range, rng.uniform());
  job.used_mem_mib =
      std::clamp(job.used_mem_mib, job.requested_mem_mib / cfg.max_ratio,
                 job.requested_mem_mib);
  job.runtime = std::clamp(
      std::exp(spec.runtime_log_mean +
               rng.normal(0.0, cfg.runtime_jitter_sigma)),
      cfg.runtime_min, cfg.runtime_max);
  job.requested_time = job.runtime * (1.0 + rng.uniform() * 3.0);
  job.status = rng.bernoulli(cfg.intrinsic_failure_fraction)
                   ? JobStatus::kFailed
                   : JobStatus::kCompleted;
  return job;
}

}  // namespace detail

Workload generate_cm5(const Cm5ModelConfig& cfg) {
  Rng rng(cfg.seed);
  const detail::Cm5Plan plan = detail::build_cm5_plan(cfg, rng);

  Workload workload;
  workload.name = "cm5-synthetic";
  workload.jobs.reserve(plan.group_of_job.size());

  // Provisional arrivals with unit mean spacing; rescaled to the nominal
  // load once total work is known.
  Seconds clock = 0.0;
  for (std::size_t i = 0; i < plan.group_of_job.size(); ++i) {
    workload.jobs.push_back(detail::emit_cm5_job(
        cfg, plan.groups[plan.group_of_job[i]], i, clock, rng));
  }

  return scale_to_load(std::move(workload), cfg.nominal_machines,
                       cfg.nominal_load);
}

Cm5ModelConfig cm5_small_config(std::uint64_t seed, std::size_t job_count) {
  Cm5ModelConfig cfg;
  cfg.seed = seed;
  cfg.job_count = job_count;
  // Preserve the mean group size (~12.3 jobs/group) at the smaller scale.
  cfg.group_count = std::max<std::size_t>(1, job_count / 12);
  cfg.user_count = std::max<std::size_t>(4, job_count / 600);
  // Scale the CM5's 32..512-node partitions down 8x so the reduced trace
  // matches the reduced 128-machine experimental cluster the same way the
  // full trace matches the 1024-node CM5.
  cfg.partition_sizes = {4, 8, 16, 32, 64};
  cfg.nominal_machines = 128;
  return cfg;
}

Workload generate_cm5_small(std::uint64_t seed, std::size_t job_count) {
  return generate_cm5(cm5_small_config(seed, job_count));
}

}  // namespace resmatch::trace
