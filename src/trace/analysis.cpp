#include "trace/analysis.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/rng.hpp"

namespace resmatch::trace {

std::uint64_t default_group_key(const JobRecord& job) noexcept {
  // Quantize memory to KiB so floating-point noise cannot split a group.
  const auto mem_kib =
      static_cast<std::uint64_t>(std::llround(job.requested_mem_mib * 1024.0));
  std::uint64_t h = util::mix64(job.user);
  h = util::mix64(h ^ (static_cast<std::uint64_t>(job.app) << 1));
  h = util::mix64(h ^ mem_kib);
  return h;
}

OverprovisionAnalysis analyze_overprovisioning(const Workload& workload,
                                               double bin_width,
                                               double max_ratio) {
  const auto bins = static_cast<std::size_t>(
      std::max(1.0, std::ceil((max_ratio - 1.0) / bin_width)));
  OverprovisionAnalysis out{
      stats::LinearHistogram(1.0, 1.0 + bin_width * static_cast<double>(bins),
                             bins),
      0.0,
      {},
      0.0};
  std::size_t ge2 = 0;
  for (const auto& job : workload.jobs) {
    const double ratio = job.overprovision_ratio();
    out.histogram.add(ratio);
    out.max_ratio_seen = std::max(out.max_ratio_seen, ratio);
    if (ratio >= 2.0) ++ge2;
  }
  // Counted exactly rather than from histogram bins: the paper's 32.8%
  // threshold need not align with a bin edge.
  if (!workload.jobs.empty()) {
    out.fraction_ge2 =
        static_cast<double>(ge2) / static_cast<double>(workload.jobs.size());
  }

  // Paper Figure 1 fits a regression line to the log-scaled histogram:
  // log10(percentage of jobs) against the over-provisioning ratio. Empty
  // bins carry no information about the decay and are excluded.
  std::vector<double> xs, ys;
  const double total = static_cast<double>(out.histogram.total());
  for (const auto& bin : out.histogram.bins()) {
    if (bin.count == 0 || total == 0.0) continue;
    const double center = 0.5 * (bin.lower + bin.upper);
    const double pct = 100.0 * static_cast<double>(bin.count) / total;
    xs.push_back(center);
    ys.push_back(std::log10(pct));
  }
  out.log_fit = stats::fit_linear(xs, ys);
  return out;
}

std::vector<GroupProfile> profile_groups(const Workload& workload,
                                         const GroupKeyFn& key) {
  std::unordered_map<std::uint64_t, GroupProfile> by_key;
  by_key.reserve(workload.jobs.size() / 4);
  for (const auto& job : workload.jobs) {
    const std::uint64_t k = key(job);
    auto [it, inserted] = by_key.try_emplace(k);
    GroupProfile& g = it->second;
    if (inserted) {
      g.key = k;
      g.requested_mib = job.requested_mem_mib;
      g.max_used_mib = job.used_mem_mib;
      g.min_used_mib = job.used_mem_mib;
    } else {
      g.max_used_mib = std::max(g.max_used_mib, job.used_mem_mib);
      g.min_used_mib = std::min(g.min_used_mib, job.used_mem_mib);
    }
    ++g.size;
  }
  std::vector<GroupProfile> out;
  out.reserve(by_key.size());
  for (auto& [k, g] : by_key) {
    (void)k;
    out.push_back(g);
  }
  // Deterministic order for reproducible reports.
  std::sort(out.begin(), out.end(),
            [](const GroupProfile& a, const GroupProfile& b) {
              return a.size != b.size ? a.size > b.size : a.key < b.key;
            });
  return out;
}

GroupSizeDistribution group_size_distribution(
    const std::vector<GroupProfile>& groups, std::size_t threshold) {
  GroupSizeDistribution out;
  std::map<long long, std::size_t> jobs_by_size;
  std::size_t groups_ge = 0, jobs_ge = 0;
  for (const auto& g : groups) {
    jobs_by_size[static_cast<long long>(g.size)] += g.size;
    out.job_count += g.size;
    if (g.size >= threshold) {
      ++groups_ge;
      jobs_ge += g.size;
    }
  }
  out.group_count = groups.size();
  out.jobs_by_size.assign(jobs_by_size.begin(), jobs_by_size.end());
  if (out.group_count > 0) {
    out.fraction_groups_ge_threshold =
        static_cast<double>(groups_ge) / static_cast<double>(out.group_count);
  }
  if (out.job_count > 0) {
    out.fraction_jobs_ge_threshold =
        static_cast<double>(jobs_ge) / static_cast<double>(out.job_count);
  }
  return out;
}

std::vector<GroupQualityPoint> group_quality_scatter(
    const std::vector<GroupProfile>& groups, std::size_t min_size) {
  std::vector<GroupQualityPoint> out;
  for (const auto& g : groups) {
    if (g.size < min_size) continue;
    out.push_back({g.similarity_range(), g.potential_gain(), g.size});
  }
  return out;
}

}  // namespace resmatch::trace
