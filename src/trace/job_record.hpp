// Job trace records.
//
// The schema mirrors the Standard Workload Format (SWF) used by the
// Parallel Workloads Archive — the source of the paper's LANL CM5 trace —
// restricted to the fields the experiments consume, plus the actual
// per-node memory usage that makes the over-provisioning study possible.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace resmatch::trace {

/// Completion status recorded in a trace (SWF convention).
enum class JobStatus : int {
  kFailed = 0,
  kCompleted = 1,
  kCancelled = 5,
  kUnknown = -1,
};

/// One job submission as recorded in a workload trace.
///
/// Memory quantities are per node, in MiB (the CM5 has 32 MiB per node).
/// `used_mem_mib` is what the job actually consumed at peak — the field
/// whose divergence from `requested_mem_mib` the paper studies.
struct JobRecord {
  JobId id = 0;
  Seconds submit = 0.0;          ///< arrival time relative to trace start
  Seconds runtime = 0.0;         ///< actual execution time
  Seconds requested_time = 0.0;  ///< user's runtime estimate (unused by the
                                 ///< estimator; kept for SWF fidelity)
  std::uint32_t nodes = 1;       ///< machines required (CM5 partition size)
  MiB requested_mem_mib = 0.0;   ///< user-requested memory per node
  MiB used_mem_mib = 0.0;        ///< actual peak memory per node
  UserId user = 0;
  AppId app = 0;
  JobStatus status = JobStatus::kCompleted;

  /// Node-seconds of work this job demands.
  [[nodiscard]] double work() const noexcept {
    return static_cast<double>(nodes) * runtime;
  }

  /// Requested-over-used memory ratio; the paper's over-provisioning
  /// measure (Figure 1). Returns 1 when usage is unknown or zero.
  [[nodiscard]] double overprovision_ratio() const noexcept {
    if (used_mem_mib <= 0.0 || requested_mem_mib <= 0.0) return 1.0;
    return requested_mem_mib / used_mem_mib;
  }
};

/// Structural validity for simulation input: non-negative times, at least
/// one node, known memory fields, and usage not exceeding request (the
/// paper's standing assumption, §1.3).
[[nodiscard]] bool is_simulatable(const JobRecord& job) noexcept;

/// Human-readable one-line description (diagnostics and logs).
[[nodiscard]] std::string to_string(const JobRecord& job);

/// A whole trace plus its provenance.
struct Workload {
  std::vector<JobRecord> jobs;
  std::string name;

  /// Total node-seconds demanded.
  [[nodiscard]] double total_work() const noexcept;
  /// Time between first submit and last submit.
  [[nodiscard]] Seconds span() const noexcept;
  /// Offered load against a cluster of `machines` nodes: demanded
  /// node-seconds over available node-seconds within the submit span.
  [[nodiscard]] double offered_load(std::size_t machines) const noexcept;
};

}  // namespace resmatch::trace
