// Tabular Q-learning with epsilon-greedy exploration.
//
// Backs the reinforcement-learning quadrant of the paper's Table 1: the
// agent learns a *global* request-scaling policy by trial and error, with
// the reward signal derived from job success and saved resources (see
// core::RlEstimator for the environment wiring).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace resmatch::ml {

struct QLearningConfig {
  double learning_rate = 0.1;   ///< step size for the TD update
  double discount = 0.0;        ///< one-shot episodes by default
  double epsilon = 0.1;         ///< exploration probability
  double epsilon_decay = 0.9999;  ///< multiplicative decay per update
  double epsilon_min = 0.01;
  double initial_q = 0.0;       ///< optimistic init > 0 encourages trying
};

class QLearningAgent {
 public:
  QLearningAgent(std::size_t states, std::size_t actions,
                 QLearningConfig config, std::uint64_t seed);

  /// Epsilon-greedy action selection.
  [[nodiscard]] std::size_t select_action(std::size_t state);

  /// Greedy action (evaluation mode, no exploration).
  [[nodiscard]] std::size_t best_action(std::size_t state) const;

  /// TD(0) update; pass `next_state == states()` for terminal transitions
  /// (bootstrapped value 0).
  void update(std::size_t state, std::size_t action, double reward,
              std::size_t next_state);

  [[nodiscard]] double q_value(std::size_t state, std::size_t action) const;
  [[nodiscard]] std::size_t states() const noexcept { return states_; }
  [[nodiscard]] std::size_t actions() const noexcept { return actions_; }
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] std::size_t updates() const noexcept { return updates_; }

 private:
  std::size_t states_;
  std::size_t actions_;
  QLearningConfig config_;
  double epsilon_;
  std::vector<double> q_;  // states x actions, row-major
  util::Rng rng_;
  std::size_t updates_ = 0;
};

}  // namespace resmatch::ml
