#include "ml/qlearning.hpp"

#include <algorithm>
#include <cassert>

namespace resmatch::ml {

QLearningAgent::QLearningAgent(std::size_t states, std::size_t actions,
                               QLearningConfig config, std::uint64_t seed)
    : states_(states),
      actions_(actions),
      config_(config),
      epsilon_(config.epsilon),
      q_(states * actions, config.initial_q),
      rng_(seed) {
  assert(states > 0 && actions > 0);
}

std::size_t QLearningAgent::select_action(std::size_t state) {
  assert(state < states_);
  if (rng_.bernoulli(epsilon_)) {
    return static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(actions_) - 1));
  }
  return best_action(state);
}

std::size_t QLearningAgent::best_action(std::size_t state) const {
  assert(state < states_);
  const double* row = &q_[state * actions_];
  std::size_t best = 0;
  for (std::size_t a = 1; a < actions_; ++a) {
    if (row[a] > row[best]) best = a;
  }
  return best;
}

void QLearningAgent::update(std::size_t state, std::size_t action,
                            double reward, std::size_t next_state) {
  assert(state < states_ && action < actions_);
  double bootstrap = 0.0;
  if (config_.discount > 0.0 && next_state < states_) {
    bootstrap =
        config_.discount * q_[next_state * actions_ + best_action(next_state)];
  }
  double& q = q_[state * actions_ + action];
  q += config_.learning_rate * (reward + bootstrap - q);
  epsilon_ = std::max(config_.epsilon_min, epsilon_ * config_.epsilon_decay);
  ++updates_;
}

double QLearningAgent::q_value(std::size_t state, std::size_t action) const {
  assert(state < states_ && action < actions_);
  return q_[state * actions_ + action];
}

}  // namespace resmatch::ml
