#include "ml/knn.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace resmatch::ml {

KnnRegressor::KnnRegressor(std::size_t k, std::size_t max_points)
    : k_(std::max<std::size_t>(k, 1)), max_points_(std::max<std::size_t>(max_points, 1)) {}

void KnnRegressor::add(std::vector<double> features, double target) {
  if (points_.size() < max_points_) {
    points_.push_back({std::move(features), target});
    return;
  }
  points_[next_slot_] = {std::move(features), target};
  next_slot_ = (next_slot_ + 1) % max_points_;
}

double KnnRegressor::predict(const std::vector<double>& features,
                             double fallback) const {
  if (points_.empty()) return fallback;

  // Collect squared distances; brute force is fine at the estimator's call
  // rates (thousands of predictions over tens of thousands of points).
  // The pair vector is a member scratch buffer: clear() keeps capacity, so
  // after the ring buffer fills no prediction allocates.
  std::vector<std::pair<double, double>>& dist_y = scratch_;
  dist_y.clear();
  dist_y.reserve(points_.size());
  for (const auto& p : points_) {
    assert(p.x.size() == features.size());
    double d2 = 0.0;
    for (std::size_t i = 0; i < features.size(); ++i) {
      const double d = p.x[i] - features[i];
      d2 += d * d;
    }
    dist_y.emplace_back(d2, p.y);
  }
  const std::size_t k = std::min(k_, dist_y.size());
  std::partial_sort(dist_y.begin(), dist_y.begin() + static_cast<long>(k),
                    dist_y.end());
  double weight_sum = 0.0, acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (dist_y[i].first + 1e-9);
    weight_sum += w;
    acc += w * dist_y[i].second;
  }
  return acc / weight_sum;
}

}  // namespace resmatch::ml
