// k-nearest-neighbour regressor.
//
// A nonparametric alternative to the ridge model for the explicit-feedback,
// no-similarity-groups quadrant of the paper's Table 1: predict a job's
// usage from the most similar previously observed requests, without
// requiring exact key matches.
#pragma once

#include <cstddef>
#include <vector>

namespace resmatch::ml {

class KnnRegressor {
 public:
  /// `k` = neighbours consulted; `max_points` bounds memory (oldest points
  /// are evicted ring-buffer style once exceeded).
  explicit KnnRegressor(std::size_t k = 8, std::size_t max_points = 50000);

  void add(std::vector<double> features, double target);

  /// Distance-weighted mean of the k nearest targets; `fallback` when no
  /// points have been observed yet.
  [[nodiscard]] double predict(const std::vector<double>& features,
                               double fallback) const;

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

 private:
  struct Point {
    std::vector<double> x;
    double y = 0.0;
  };

  std::size_t k_;
  std::size_t max_points_;
  std::size_t next_slot_ = 0;
  std::vector<Point> points_;
  /// predict() scratch (distance, target) pairs, reused across calls so
  /// the hot path stays allocation-free once warmed. Makes predict()
  /// non-reentrant: concurrent const calls on one instance would race.
  mutable std::vector<std::pair<double, double>> scratch_;
};

}  // namespace resmatch::ml
