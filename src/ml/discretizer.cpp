#include "ml/discretizer.hpp"

#include <algorithm>
#include <cassert>

namespace resmatch::ml {

Discretizer::Discretizer(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets) {
  assert(hi > lo && buckets > 0);
}

std::size_t Discretizer::bucket(double x) const noexcept {
  if (x <= lo_) return 0;
  if (x >= hi_) return buckets_ - 1;
  const double t = (x - lo_) / (hi_ - lo_);
  const auto b = static_cast<std::size_t>(t * static_cast<double>(buckets_));
  return std::min(b, buckets_ - 1);
}

double Discretizer::midpoint(std::size_t bucket_index) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(buckets_);
  return lo_ + width * (static_cast<double>(bucket_index) + 0.5);
}

StateSpace::StateSpace(std::vector<Discretizer> dims) : dims_(std::move(dims)) {
  for (const auto& d : dims_) count_ *= d.buckets();
}

std::size_t StateSpace::index(const std::vector<double>& values) const {
  assert(values.size() == dims_.size());
  std::size_t idx = 0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    idx = idx * dims_[i].buckets() + dims_[i].bucket(values[i]);
  }
  return idx;
}

}  // namespace resmatch::ml
