// Feature extraction from job records for the learning-based estimators.
//
// The regression estimator in the paper's Table 1 learns a mapping from
// "request file parameters" to actual resource usage; these are those
// parameters, normalized so one fixed feature scale works across traces.
#pragma once

#include <vector>

#include "trace/job_record.hpp"

namespace resmatch::ml {

/// Number of features produced by job_features().
inline constexpr std::size_t kJobFeatureCount = 5;

/// Map a job request to a numeric feature vector:
///   [ log2(requested memory MiB), log2(nodes), log10(requested time + 1),
///     user-id hash bucket in [0,1), app-id hash bucket in [0,1) ]
/// Only request-time information is used (usage is the target, never a
/// feature).
[[nodiscard]] std::vector<double> job_features(const trace::JobRecord& job);

/// Regression target: log2 of the actual per-node memory used. Learning in
/// log space keeps the multi-order-of-magnitude usage range well scaled
/// and makes the model multiplicative, matching the paper's "divide the
/// request by k" intuition.
[[nodiscard]] double usage_target(const trace::JobRecord& job);

/// Inverse of usage_target: recover MiB from a predicted target.
[[nodiscard]] double target_to_mib(double target);

}  // namespace resmatch::ml
