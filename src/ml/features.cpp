#include "ml/features.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace resmatch::ml {

namespace {
/// Stable hash of an id into [0, 1). Gives categorical ids a numeric
/// embedding without maintaining a dictionary.
double hash_bucket(std::uint64_t id) {
  return static_cast<double>(util::mix64(id) >> 11) * 0x1.0p-53;
}
}  // namespace

std::vector<double> job_features(const trace::JobRecord& job) {
  return {
      std::log2(std::max(job.requested_mem_mib, 1e-3)),
      std::log2(static_cast<double>(std::max<std::uint32_t>(job.nodes, 1))),
      std::log10(std::max(job.requested_time, 0.0) + 1.0),
      hash_bucket(job.user),
      hash_bucket(static_cast<std::uint64_t>(job.app) + 0x9E37ULL),
  };
}

double usage_target(const trace::JobRecord& job) {
  return std::log2(std::max(job.used_mem_mib, 1e-3));
}

double target_to_mib(double target) { return std::exp2(target); }

}  // namespace resmatch::ml
