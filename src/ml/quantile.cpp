#include "ml/quantile.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace resmatch::ml {

OnlineQuantileRegressor::OnlineQuantileRegressor(
    std::size_t features, QuantileRegressorConfig config)
    : config_(config),
      weights_(features + 1, 0.0),
      average_(features + 1, 0.0) {
  config_.tau = std::clamp(config_.tau, 1e-3, 1.0 - 1e-3);
  config_.learning_rate = std::max(config_.learning_rate, 0.0);
}

double OnlineQuantileRegressor::predict(const std::vector<double>& x) const {
  assert(x.size() + 1 == weights_.size());
  const std::vector<double>& w =
      config_.averaging_horizon > 1.0 ? average_ : weights_;
  double acc = w.back();  // bias
  for (std::size_t i = 0; i < x.size(); ++i) acc += w[i] * x[i];
  return acc;
}

void OnlineQuantileRegressor::update(const std::vector<double>& x, double y) {
  assert(x.size() + 1 == weights_.size());
  // The subgradient is evaluated at the RAW iterate (this is plain SGD
  // with averaging on the side, not a different algorithm): the iterate
  // must keep straddling the quantile for the average to sit on it.
  double raw = weights_.back();
  for (std::size_t i = 0; i < x.size(); ++i) raw += weights_[i] * x[i];
  // Pinball-loss subgradient: dL/dpred = -tau when under-predicting,
  // (1 - tau) when covering. The tie (y == pred, zero loss) takes the
  // covering branch, the conventional subgradient choice. Normalizing by
  // the squared feature norm (plus 1 for the bias) makes the PREDICTION
  // move by exactly lr*tau (or lr*(1-tau)) per step regardless of
  // feature scale — unnormalized steps on these features overshoot by
  // more than a whole capacity-ladder rung per observation.
  double norm_sq = 1.0;
  for (const double v : x) norm_sq += v * v;
  const double gain = y > raw ? config_.learning_rate * config_.tau
                              : -config_.learning_rate * (1.0 - config_.tau);
  const double step = gain / norm_sq;
  for (std::size_t i = 0; i < x.size(); ++i) weights_[i] += step * x[i];
  weights_.back() += step;
  if (config_.averaging_horizon > 1.0) {
    // Ramp the horizon in over the first observations so the average
    // tracks the fast early descent instead of anchoring to the zero
    // initialization.
    const double lambda =
        1.0 / std::min(static_cast<double>(observations_ + 1),
                       config_.averaging_horizon);
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      average_[i] += lambda * (weights_[i] - average_[i]);
    }
  }
  ++observations_;
}

std::vector<double> OnlineQuantileRegressor::state() const {
  std::vector<double> out;
  out.reserve(1 + 2 * weights_.size());
  out.push_back(static_cast<double>(observations_));
  out.insert(out.end(), weights_.begin(), weights_.end());
  out.insert(out.end(), average_.begin(), average_.end());
  return out;
}

bool OnlineQuantileRegressor::restore(const std::vector<double>& state) {
  if (state.size() != 1 + 2 * weights_.size()) return false;
  if (!(state[0] >= 0.0) || !std::isfinite(state[0])) return false;
  for (std::size_t i = 1; i < state.size(); ++i) {
    if (!std::isfinite(state[i])) return false;
  }
  observations_ = static_cast<std::size_t>(state[0]);
  const auto raw_begin = state.begin() + 1;
  std::copy(raw_begin, raw_begin + static_cast<std::ptrdiff_t>(weights_.size()),
            weights_.begin());
  std::copy(raw_begin + static_cast<std::ptrdiff_t>(weights_.size()),
            state.end(), average_.begin());
  return true;
}

}  // namespace resmatch::ml
