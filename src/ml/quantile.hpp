// Online quantile regression via pinball-loss SGD.
//
// Rodrigues et al. ("Helping HPC Users Specify Job Memory Requirements
// via Machine Learning") show that predicting a high quantile of used
// memory — not the mean — is what makes ML predictions safe to allocate
// against: the asymmetric pinball loss charges an under-prediction
// tau/(1-tau) times more than an over-prediction of the same size, so the
// fitted line converges to the tau-quantile of the conditional target
// distribution instead of its center.
//
// The model is linear in the job features plus a bias term and learns one
// subgradient step per observation, so it is fully online (no stored
// sample matrix), deterministic, and its entire state is a flat vector of
// doubles — small enough to ride in an EstimatorStore snapshot row or a
// WAL frame (svc layer persistence).
#pragma once

#include <cstddef>
#include <vector>

namespace resmatch::ml {

struct QuantileRegressorConfig {
  /// Target quantile in (0, 1); 0.95 biases toward upper bounds.
  double tau = 0.95;
  /// Constant SGD step size, in target (log2 MiB) units per observation:
  /// the subgradient is normalized by the squared feature norm, so one
  /// under-predicted observation raises the prediction at that point by
  /// learning_rate * tau and one covered observation lowers it by
  /// learning_rate * (1 - tau). Constant (not decaying) keeps the model
  /// adaptive to workload drift and its state free of a step schedule.
  double learning_rate = 0.5;
  /// Constant-step SGD never converges — it oscillates around the
  /// optimum in a sawtooth whose upward jumps are tau/(1-tau) times the
  /// downward drift. Predictions therefore come from an exponential
  /// moving average of the iterates (Polyak-style tail averaging with a
  /// forgetting horizon, so drift adaptivity is kept): the raw iterate
  /// keeps taking full-size steps, the average damps the sawtooth by
  /// roughly the square root of the horizon. <= 1 disables averaging
  /// (predict the raw iterate).
  double averaging_horizon = 64;
};

class OnlineQuantileRegressor {
 public:
  explicit OnlineQuantileRegressor(std::size_t features,
                                   QuantileRegressorConfig config = {});

  /// Current estimate of the tau-quantile of the target at `x`.
  [[nodiscard]] double predict(const std::vector<double>& x) const;

  /// One pinball-loss subgradient step on the observation (x, y):
  ///   y > prediction:  w += lr * tau       * [x, 1]
  ///   otherwise:       w -= lr * (1 - tau) * [x, 1]
  void update(const std::vector<double>& x, double y);

  [[nodiscard]] std::size_t observations() const noexcept {
    return observations_;
  }
  [[nodiscard]] double tau() const noexcept { return config_.tau; }
  [[nodiscard]] std::size_t feature_count() const noexcept {
    return weights_.size() - 1;
  }

  /// Flat numeric state: [observations, w_0 .. w_{d-1}, bias,
  /// avg_w_0 .. avg_w_{d-1}, avg_bias]. Together with the (immutable)
  /// config this fully determines future behavior.
  [[nodiscard]] std::vector<double> state() const;
  /// Restore a state() vector; rejects (returns false, unchanged) blobs
  /// whose length does not match this model's feature count.
  [[nodiscard]] bool restore(const std::vector<double>& state);

 private:
  QuantileRegressorConfig config_;
  std::vector<double> weights_;  ///< raw SGD iterate (weights + bias)
  std::vector<double> average_;  ///< EWMA of iterates; serves predictions
  std::size_t observations_ = 0;
};

}  // namespace resmatch::ml
