// Uniform discretization of continuous signals into bucket indices, used
// to build the tabular state space of the reinforcement-learning estimator.
#pragma once

#include <cstddef>
#include <vector>

namespace resmatch::ml {

/// Maps [lo, hi] onto {0, ..., buckets-1}, clamping outside values.
class Discretizer {
 public:
  Discretizer(double lo, double hi, std::size_t buckets);

  [[nodiscard]] std::size_t bucket(double x) const noexcept;
  [[nodiscard]] std::size_t buckets() const noexcept { return buckets_; }

  /// Representative (midpoint) value of a bucket.
  [[nodiscard]] double midpoint(std::size_t bucket_index) const noexcept;

 private:
  double lo_, hi_;
  std::size_t buckets_;
};

/// Composes several discretizers into a single flat state index
/// (row-major). State count is the product of the bucket counts.
class StateSpace {
 public:
  explicit StateSpace(std::vector<Discretizer> dims);

  [[nodiscard]] std::size_t state_count() const noexcept { return count_; }

  /// Flatten one observation (values.size() must equal dimension count).
  [[nodiscard]] std::size_t index(const std::vector<double>& values) const;

  [[nodiscard]] std::size_t dimensions() const noexcept {
    return dims_.size();
  }

 private:
  std::vector<Discretizer> dims_;
  std::size_t count_ = 1;
};

}  // namespace resmatch::ml
