#!/usr/bin/env python3
"""Validate BENCH_*.json records against schema version 1.

Usage: validate_bench_json.py FILE [FILE ...] [--require-summary KEY ...]

Schema v1 (produced by obs::BenchRecord, see src/obs/bench_record.hpp):
  {
    "bench":          str          driver name
    "schema_version": 1
    "created_unix":   int          wall-clock stamp
    "config":         {str: str}   launch knobs
    "summary":        {str: num}   headline results
    "metrics":        {"metrics": [...]}   obs::to_json registry dump
  }

Each entry of metrics.metrics must carry name/type/help/labels plus either
a finite value (counter/gauge) or inline histogram fields (buckets, count,
sum, p50/p90/p99; bucket counts must sum to count and include +Inf).
Exits nonzero on the first invalid file, so CI can gate on it.
"""

import argparse
import json
import math
import sys

NUMBER = (int, float)


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def check_histogram(path, name, hist):
    for key in ("buckets", "count", "sum", "p50", "p90", "p99"):
        if key not in hist:
            return fail(path, f"metric {name}: histogram missing '{key}'")
    if not isinstance(hist["buckets"], list):
        return fail(path, f"metric {name}: buckets must be a list")
    total = hist["count"]
    if not isinstance(total, int) or total < 0:
        return fail(path, f"metric {name}: count must be a non-negative int")
    running = 0
    saw_inf = False
    prev_le = -math.inf
    for bucket in hist["buckets"]:
        if not isinstance(bucket, dict) or "le" not in bucket or "count" not in bucket:
            return fail(path, f"metric {name}: malformed bucket {bucket!r}")
        le = bucket["le"]
        if le == "+Inf":
            saw_inf = True
        else:
            if not isinstance(le, NUMBER):
                return fail(path, f"metric {name}: bucket le {le!r} not numeric")
            if le <= prev_le:
                return fail(path, f"metric {name}: bucket bounds not ascending")
            prev_le = le
        if not isinstance(bucket["count"], int) or bucket["count"] < 0:
            return fail(path, f"metric {name}: bucket count {bucket['count']!r}")
        running += bucket["count"]
    if not saw_inf:
        return fail(path, f"metric {name}: no +Inf bucket")
    if running != total:
        return fail(path, f"metric {name}: buckets sum to {running}, count is {total}")
    for q in ("p50", "p90", "p99"):
        if not isinstance(hist[q], NUMBER) or not math.isfinite(hist[q]):
            return fail(path, f"metric {name}: {q} not finite")
    return True


def check_metric(path, metric):
    for key in ("name", "type", "help", "labels"):
        if key not in metric:
            return fail(path, f"metric entry missing '{key}': {metric!r}")
    name = metric["name"]
    kind = metric["type"]
    if kind not in ("counter", "gauge", "histogram"):
        return fail(path, f"metric {name}: unknown type '{kind}'")
    if not isinstance(metric["labels"], dict):
        return fail(path, f"metric {name}: labels must be an object")
    if kind == "histogram":
        return check_histogram(path, name, metric)
    value = metric.get("value")
    if not isinstance(value, NUMBER) or not math.isfinite(value):
        return fail(path, f"metric {name}: value {value!r} not finite")
    return True


def validate(path, require_summary):
    try:
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return fail(path, f"unreadable or invalid JSON: {err}")

    if not isinstance(record, dict):
        return fail(path, "top level must be an object")
    if record.get("schema_version") != 1:
        return fail(path, f"schema_version {record.get('schema_version')!r}, expected 1")
    if not isinstance(record.get("bench"), str) or not record["bench"]:
        return fail(path, "missing or empty 'bench'")
    if not isinstance(record.get("created_unix"), int):
        return fail(path, "'created_unix' must be an integer")
    config = record.get("config")
    if not isinstance(config, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in config.items()
    ):
        return fail(path, "'config' must map strings to strings")
    summary = record.get("summary")
    if not isinstance(summary, dict) or not all(
        isinstance(k, str) and isinstance(v, NUMBER) and math.isfinite(v)
        for k, v in summary.items()
    ):
        return fail(path, "'summary' must map strings to finite numbers")
    for key in require_summary:
        if key not in summary:
            return fail(path, f"summary missing required key '{key}'")
    metrics = record.get("metrics")
    if not isinstance(metrics, dict) or not isinstance(metrics.get("metrics"), list):
        return fail(path, "'metrics' must be an object with a 'metrics' list")
    for metric in metrics["metrics"]:
        if not check_metric(path, metric):
            return False
    print(
        f"{path}: OK (bench={record['bench']}, "
        f"{len(summary)} summary keys, {len(metrics['metrics'])} series)"
    )
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="BENCH_*.json files to check")
    parser.add_argument(
        "--require-summary",
        nargs="*",
        default=[],
        metavar="KEY",
        help="summary keys that must be present (e.g. jobs_per_sec submit_p99_us)",
    )
    args = parser.parse_args()
    ok = all(validate(path, args.require_summary) for path in args.files)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
