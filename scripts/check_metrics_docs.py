#!/usr/bin/env python3
"""Docs lint: every metric the code exports must be documented.

Scans C++ sources under src/ for metric-name string literals
("resmatch_..." passed to the obs::Registry registration calls) and fails
if any of them is missing from OPERATIONS.md. This keeps the operator
runbook's metrics reference complete by construction: adding a metric
without documenting it breaks CI.

Usage:
    python3 scripts/check_metrics_docs.py [--src SRC_DIR] [--docs OPERATIONS.md]

Exit status: 0 when every exported metric is documented, 1 otherwise.
"""

import argparse
import pathlib
import re
import sys

# Metric names are snake_case literals with the project prefix. Other
# resmatch identifiers in the tree (CMake targets, the snapshot format
# magic "resmatch-estimator-store") use dashes or different casing and do
# not match.
METRIC_RE = re.compile(r'"(resmatch_[a-z0-9_]+)"')


def exported_metrics(src_root: pathlib.Path) -> dict[str, list[str]]:
    """Map metric name -> source files mentioning it."""
    found: dict[str, list[str]] = {}
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in {".cpp", ".hpp", ".cc", ".h"}:
            continue
        text = path.read_text(encoding="utf-8", errors="replace")
        for name in METRIC_RE.findall(text):
            found.setdefault(name, []).append(str(path))
    return found


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--src", default="src", help="C++ source root to scan")
    parser.add_argument(
        "--docs", default="OPERATIONS.md", help="runbook that must cover them"
    )
    args = parser.parse_args()

    src_root = pathlib.Path(args.src)
    docs_path = pathlib.Path(args.docs)
    if not src_root.is_dir():
        print(f"check_metrics_docs: no such source dir: {src_root}")
        return 1
    if not docs_path.is_file():
        print(f"check_metrics_docs: missing docs file: {docs_path}")
        return 1

    metrics = exported_metrics(src_root)
    if not metrics:
        print(f"check_metrics_docs: no metrics found under {src_root} "
              "(scan pattern broken?)")
        return 1

    docs = docs_path.read_text(encoding="utf-8")
    missing = {
        name: files for name, files in metrics.items() if name not in docs
    }
    if missing:
        print(f"check_metrics_docs: {len(missing)} exported metric(s) "
              f"missing from {docs_path}:")
        for name, files in sorted(missing.items()):
            print(f"  {name}  (exported by {', '.join(sorted(set(files)))})")
        print("Document each in the metrics reference section of "
              f"{docs_path} (name, type, meaning, alert hint).")
        return 1

    print(f"check_metrics_docs: all {len(metrics)} exported metrics "
          f"documented in {docs_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
