#!/usr/bin/env python3
"""Docs lint: every registered trace model must be catalogued.

Parses the `kTraceModelNames[]` initializer in src/exp/scenarios.cpp (the
single registry the sweep runner dispatches on) and fails if any model name
is missing from SCENARIOS.md. This keeps the workload catalog complete by
construction: registering a new trace model without documenting its
parameters, distributions, and seed behaviour breaks CI.

Usage:
    python3 scripts/check_scenarios_docs.py [--src src/exp/scenarios.cpp]
                                            [--docs SCENARIOS.md]

Exit status: 0 when every registered model is documented, 1 otherwise.
"""

import argparse
import pathlib
import re
import sys

# The registry is a braced initializer of string literals, one per line:
#     const char* const kTraceModelNames[] = {
#         "cm5",
#         ...
#     };
REGISTRY_RE = re.compile(
    r"kTraceModelNames\[\]\s*=\s*\{(?P<body>[^}]*)\}", re.DOTALL
)
NAME_RE = re.compile(r'"([a-z0-9-]+)"')


def registered_models(src_path: pathlib.Path) -> list[str]:
    text = src_path.read_text(encoding="utf-8", errors="replace")
    match = REGISTRY_RE.search(text)
    if match is None:
        return []
    return NAME_RE.findall(match.group("body"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--src",
        default="src/exp/scenarios.cpp",
        help="source file holding the kTraceModelNames registry",
    )
    parser.add_argument(
        "--docs", default="SCENARIOS.md", help="catalog that must cover them"
    )
    args = parser.parse_args()

    src_path = pathlib.Path(args.src)
    docs_path = pathlib.Path(args.docs)
    if not src_path.is_file():
        print(f"check_scenarios_docs: no such source file: {src_path}")
        return 1
    if not docs_path.is_file():
        print(f"check_scenarios_docs: missing docs file: {docs_path}")
        return 1

    models = registered_models(src_path)
    if not models:
        print(f"check_scenarios_docs: no kTraceModelNames registry found in "
              f"{src_path} (parse pattern broken?)")
        return 1

    docs = docs_path.read_text(encoding="utf-8")
    missing = [name for name in models if name not in docs]
    if missing:
        print(f"check_scenarios_docs: {len(missing)} registered trace "
              f"model(s) missing from {docs_path}:")
        for name in missing:
            print(f"  {name}")
        print(f"Add a catalog section to {docs_path} for each (generator, "
              "parameters, distributions, seed behaviour, consumers).")
        return 1

    print(f"check_scenarios_docs: all {len(models)} registered trace models "
          f"documented in {docs_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
