// Figure 1: histogram of the ratio between requested memory size and
// actual memory used, per job, in the (synthetic) LANL CM5 workload.
//
// Paper reference points: ~32.8% of jobs have a ratio of 2 or more, the
// decay is roughly log-linear (regression R² = 0.69 on the log-scaled
// histogram), and mismatches reach two orders of magnitude.
#include <cstdio>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "trace/analysis.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/0);
  exp::print_banner("Figure 1: over-provisioning histogram",
                    "Yom-Tov & Aridor 2006, Figure 1");

  const trace::Workload workload = args.workload();
  const auto analysis = trace::analyze_overprovisioning(workload);

  util::ConsoleTable table({"ratio bin", "jobs", "% of jobs"});
  const double total = static_cast<double>(analysis.histogram.total());
  for (const auto& bin : analysis.histogram.bins()) {
    if (bin.count == 0) continue;
    table.add_row({util::format("[%g, %g)", bin.lower, bin.upper),
                   util::format("%zu", bin.count),
                   util::format("%.3f%%", 100.0 * bin.count / total)});
  }
  table.print();

  std::printf("\njobs analyzed:            %zu\n", workload.jobs.size());
  std::printf("fraction with ratio >= 2: %.1f%%   (paper: 32.8%%)\n",
              100.0 * analysis.fraction_ge2);
  std::printf("max ratio seen:           %.1fx   (paper: ~2 orders of magnitude)\n",
              analysis.max_ratio_seen);
  std::printf("log-linear fit:           slope=%.4f  R^2=%.3f   (paper: R^2=0.69)\n",
              analysis.log_fit.slope, analysis.log_fit.r_squared);

  if (!args.csv.empty()) {
    util::CsvWriter csv(args.csv);
    csv.header({"ratio_lo", "ratio_hi", "jobs", "pct"});
    for (const auto& bin : analysis.histogram.bins()) {
      csv.row(std::vector<double>{bin.lower, bin.upper,
                                  static_cast<double>(bin.count),
                                  100.0 * bin.count / total});
    }
  }
  return 0;
}
