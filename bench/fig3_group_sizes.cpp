// Figure 3: distribution of jobs according to similarity-group size under
// the (user id, application number, requested memory) key.
//
// Paper reference points: 9,885 disjoint groups over 122,055 jobs; many
// small groups; groups of >= 10 jobs are ~19.4% of groups yet cover ~83%
// of jobs (footnote 2).
#include <cstdio>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "trace/analysis.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/0);
  exp::print_banner("Figure 3: jobs by similarity-group size",
                    "Yom-Tov & Aridor 2006, Figure 3 and footnote 2");

  const trace::Workload workload = args.workload();
  const auto groups = trace::profile_groups(workload);
  const auto dist = trace::group_size_distribution(groups, 10);

  util::ConsoleTable table({"group size", "jobs in groups of this size",
                            "fraction of all jobs"});
  for (const auto& [size, jobs] : dist.jobs_by_size) {
    table.add_row({util::format("%lld", size), util::format("%zu", jobs),
                   util::format("%.5f", static_cast<double>(jobs) /
                                            static_cast<double>(dist.job_count))});
  }
  table.print();

  std::printf("\nsimilarity groups:        %zu   (paper: 9,885)\n",
              dist.group_count);
  std::printf("jobs:                     %zu   (paper: 122,055)\n",
              dist.job_count);
  std::printf("groups with >= 10 jobs:   %.1f%%   (paper: 19.4%%)\n",
              100.0 * dist.fraction_groups_ge_threshold);
  std::printf("jobs covered by those:    %.1f%%   (paper: 83%%)\n",
              100.0 * dist.fraction_jobs_ge_threshold);

  if (!args.csv.empty()) {
    util::CsvWriter csv(args.csv);
    csv.header({"group_size", "jobs"});
    for (const auto& [size, jobs] : dist.jobs_by_size) {
      csv.row(std::vector<double>{static_cast<double>(size),
                                  static_cast<double>(jobs)});
    }
  }
  return 0;
}
