// Ablation: sensitivity of Algorithm 1 to its alpha and beta parameters
// (paper §2.3 discusses the trade-offs qualitatively; §3.1 picks
// alpha = 2, beta = 0 as the best compromise — this bench measures the
// grid the discussion implies).
//
// Expectations from the paper's discussion:
//   * alpha too low  -> conservative descent, ladder stalls, smaller gain;
//   * alpha too high -> coarse probes overshoot, more failures or reverts;
//   * beta closer to 1 -> finer eventual estimates but repeated failures.
#include <cstdio>
#include <limits>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/20000);
  exp::print_banner("Ablation: alpha/beta grid for Algorithm 1",
                    "Yom-Tov & Aridor 2006, §2.3 discussion + §3.1 setting");

  trace::Workload workload = args.workload();
  // The paper's two-pool cluster offers only two capacity rungs, which
  // hides most of the alpha/beta trade-off (every alpha >= 1.34 lands on
  // the same rung). This ablation therefore uses a five-rung cluster —
  // half the machines at 32 MiB and the rest spread over 24/16/8/4 MiB —
  // where the §2.3 phenomena are visible: a low alpha stalls high on the
  // ladder, alpha = 2 overshoots the 24 MiB rung for mid-usage groups and
  // needs beta > 0 to recover, and a large alpha probes straight to the
  // bottom.
  const std::size_t unit = args.trace_jobs == 0 ? 128 : 16;
  const sim::ClusterSpec cluster = {{32.0, 4 * unit}, {24.0, unit},
                                    {16.0, unit},     {8.0, unit},
                                    {4.0, unit}};
  const std::size_t machines = 8 * unit;
  workload = trace::sort_by_submit(
      trace::scale_to_load(std::move(workload), machines, 1.0));

  util::ConsoleTable table({"alpha", "beta", "util", "util ratio",
                            "lowered%", "res-fail%", "slowdown"});
  std::unique_ptr<util::CsvWriter> csv;
  if (!args.csv.empty()) {
    csv = std::make_unique<util::CsvWriter>(args.csv);
    csv->header({"alpha", "beta", "util", "util_ratio", "lowered_frac",
                 "resource_fail_frac", "slowdown"});
  }

  // Spec 0 is the no-estimation baseline; the 15 grid arms follow. All 16
  // fan across the sweep engine in one call.
  std::vector<exp::RunSpec> specs;
  exp::RunSpec baseline;
  baseline.estimator = "none";
  specs.push_back(baseline);
  std::vector<std::pair<double, double>> grid;
  for (const double alpha : {1.2, 1.5, 2.0, 4.0, 10.0}) {
    for (const double beta : {0.0, 0.5, 0.9}) {
      exp::RunSpec spec = args.run_spec();
      spec.options.alpha = alpha;
      spec.options.beta = beta;
      specs.push_back(std::move(spec));
      grid.emplace_back(alpha, beta);
    }
  }
  const auto sweep =
      exp::run_specs(workload, cluster, specs, args.runner_options());
  exp::report_sweep_errors("alpha/beta arm", sweep.errors);
  if (!sweep.results[0].has_value()) {
    std::fprintf(stderr, "error: baseline run failed\n");
    return 1;
  }
  const auto& no_est = *sweep.results[0];

  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!sweep.results[i + 1].has_value()) continue;
    const auto& result = *sweep.results[i + 1];
    const auto [alpha, beta] = grid[i];
    const double ratio = no_est.utilization > 0
                             ? result.utilization / no_est.utilization
                             : std::numeric_limits<double>::quiet_NaN();
    table.add_row({util::format("%g", alpha), util::format("%g", beta),
                   util::format("%.3f", result.utilization),
                   util::format("%.3f", ratio),
                   util::format("%.1f", 100.0 * result.lowered_fraction()),
                   util::format("%.3f",
                                100.0 * result.resource_failure_fraction()),
                   util::format("%.2f", result.mean_slowdown)});
    if (csv) {
      csv->row(std::vector<double>{alpha, beta, result.utilization, ratio,
                                   result.lowered_fraction(),
                                   result.resource_failure_fraction(),
                                   result.mean_slowdown});
    }
  }
  table.print();
  std::printf("\nbaseline (no estimation) utilization: %.3f\n",
              no_est.utilization);
  std::printf("paper's operating point: alpha=2, beta=0\n");
  return 0;
}
