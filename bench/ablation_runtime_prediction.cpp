// Ablation: learned runtime predictions x memory estimation under EASY
// backfilling.
//
// The paper's related work (§1.2) cites Tsafrir et al.'s replacement of
// user runtime estimates with learned predictions as "very similar in
// spirit" to its own memory estimation. This bench runs the 2x2: both
// ideas attack over-estimation of a different user-supplied quantity, and
// under backfilling they compose — predictions tighten reservations,
// memory estimation widens machine eligibility.
#include <cstdio>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/20000);
  exp::print_banner(
      "Ablation: runtime prediction x memory estimation (EASY backfill)",
      "Yom-Tov & Aridor 2006, §1.2 (Tsafrir et al. companion idea)");

  const exp::BenchSetup setup = args.heterogeneous_setup();
  const trace::Workload& workload = setup.workload;
  const sim::ClusterSpec& cluster = setup.cluster;

  util::ConsoleTable table({"runtime input", "memory estimation", "util",
                            "mean slowdown", "p95 slowdown", "mean wait s"});
  std::unique_ptr<util::CsvWriter> csv;
  if (!args.csv.empty()) {
    csv = std::make_unique<util::CsvWriter>(args.csv);
    csv->header({"runtime_prediction", "estimator", "util", "slowdown",
                 "p95_slowdown", "wait"});
  }

  struct Arm {
    bool predict_runtime;
    const char* estimator;
  };
  std::vector<Arm> arms;
  std::vector<exp::RunSpec> specs;
  for (const bool predict_runtime : {false, true}) {
    for (const char* estimator : {"none", "successive-approximation"}) {
      exp::RunSpec spec = args.run_spec();
      spec.policy = "easy-backfill";
      spec.estimator = estimator;
      spec.use_runtime_prediction = predict_runtime;
      specs.push_back(std::move(spec));
      arms.push_back({predict_runtime, estimator});
    }
  }
  const auto sweep =
      exp::run_specs(workload, cluster, specs, args.runner_options());
  exp::report_sweep_errors("runtime-prediction arm", sweep.errors);

  for (std::size_t i = 0; i < arms.size(); ++i) {
    if (!sweep.results[i].has_value()) continue;
    const auto& result = *sweep.results[i];
    const Arm& arm = arms[i];
    table.add_row({arm.predict_runtime ? "learned (Tsafrir)" : "user estimate",
                   arm.estimator, util::format("%.3f", result.utilization),
                   util::format("%.2f", result.mean_slowdown),
                   util::format("%.2f", result.p95_slowdown),
                   util::format("%.0f", result.mean_wait)});
    if (csv) {
      csv->row({arm.predict_runtime ? "1" : "0", std::string(arm.estimator),
                util::format_number(result.utilization, 6),
                util::format_number(result.mean_slowdown, 6),
                util::format_number(result.p95_slowdown, 6),
                util::format_number(result.mean_wait, 6)});
    }
  }
  table.print();
  std::printf(
      "\nReading: memory estimation dominates on both axes. Accurate\n"
      "runtime predictions alone are ambivalent for EASY — they admit\n"
      "more short backfills but also pull the head's shadow time earlier,\n"
      "blocking others (the counterintuitive accuracy effect documented\n"
      "in the backfilling literature); combined with estimation they trim\n"
      "the p95 tail.\n");
  return 0;
}
