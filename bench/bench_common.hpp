// Shared command-line conventions and setup for the bench binaries.
//
// Every experiment binary accepts:
//   --trace-jobs=N    trace size (default: a fast reduced scale; 0 = full
//                     ~122k)
//   --jobs=N          worker threads the sweep engine fans runs across
//                     (0 = hardware concurrency, the default; 1 = serial).
//                     Sweep output is byte-identical for every value.
//   --seed=S          workload seed
//   --sim-seed=S      simulator base seed (per-point seeds derive from it)
//   --max-attempts=N  per-job attempt cap before the simulator drops it
//   --csv=PATH        optional CSV dump of the printed series
//   --metrics-out=P   optional schema-v1 BENCH_*.json sweep record
// Full paper scale is the default for the figure benches unless
// --trace-jobs overrides it; reduced scale keeps CI fast.
//
// The standard experiment fixture — the paper's two-pool heterogeneous
// cluster plus a load-scaled, submit-sorted workload — is built by
// heterogeneous_setup() so each driver declares only its sweep.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "exp/experiment.hpp"
#include "obs/bench_record.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"

namespace resmatch::exp {

/// The standard fixture: paper cluster + prepared workload. `machines` is
/// the total machine count (2 * pool), the denominator of offered load.
struct BenchSetup {
  trace::Workload workload;
  sim::ClusterSpec cluster;
  std::size_t pool = 0;
  std::size_t machines = 0;
};

struct BenchArgs {
  std::size_t trace_jobs = 0;  ///< trace size; 0 = full paper scale
  std::size_t jobs = 0;        ///< sweep workers; 0 = hardware concurrency
  std::uint64_t seed = 42;
  std::uint64_t sim_seed = 7;
  std::uint32_t max_attempts = 64;
  std::string csv;
  std::string metrics_out;

  static BenchArgs parse(int argc, const char* const* argv,
                         std::size_t default_trace_jobs) {
    util::CliArgs cli(argc, argv);
    BenchArgs out;
    out.trace_jobs = static_cast<std::size_t>(
        cli.get("trace-jobs", static_cast<std::int64_t>(default_trace_jobs)));
    out.jobs = static_cast<std::size_t>(
        cli.get("jobs", static_cast<std::int64_t>(0)));
    out.seed = static_cast<std::uint64_t>(
        cli.get("seed", static_cast<std::int64_t>(42)));
    out.sim_seed = static_cast<std::uint64_t>(
        cli.get("sim-seed", static_cast<std::int64_t>(7)));
    out.max_attempts = static_cast<std::uint32_t>(
        cli.get("max-attempts", static_cast<std::int64_t>(64)));
    out.csv = cli.get("csv", std::string{});
    out.metrics_out = cli.get("metrics-out", std::string{});
    // Unknown flags are an error, not a warning: a typo like
    // --trace-job=100 silently running the full 122k-job trace wastes a
    // CI cycle (or worse, publishes numbers from the wrong config).
    if (!cli.unused().empty()) {
      for (const auto& key : cli.unused()) {
        std::fprintf(stderr, "error: unknown option --%s\n", key.c_str());
      }
      std::fprintf(stderr,
                   "known options: --trace-jobs --jobs --seed --sim-seed "
                   "--max-attempts --csv --metrics-out\n");
      std::exit(2);
    }
    return out;
  }

  [[nodiscard]] trace::Workload workload() const {
    return standard_workload(seed, trace_jobs);
  }

  /// Simulator configuration with the shared CLI knobs applied.
  [[nodiscard]] sim::SimulationConfig sim_config() const {
    sim::SimulationConfig config;
    config.seed = sim_seed;
    config.max_attempts_per_job = max_attempts;
    return config;
  }

  /// A RunSpec carrying sim_config(); drivers override estimator/policy
  /// per sweep point.
  [[nodiscard]] RunSpec run_spec() const {
    RunSpec spec;
    spec.sim = sim_config();
    return spec;
  }

  /// Sweep-engine options from the shared --jobs flag, optionally wired
  /// to a metrics registry for BENCH_*.json export.
  [[nodiscard]] RunnerOptions runner_options(
      obs::Registry* metrics = nullptr) const {
    RunnerOptions options;
    options.jobs = jobs;
    options.metrics = metrics;
    return options;
  }

  /// The paper's experiment fixture: 32 MiB pool + `second_pool_mib` pool
  /// (512 machines each at full scale, 64 at reduced scale), workload
  /// narrowed to jobs that fit, rescaled to `load`, sorted by submit time.
  [[nodiscard]] BenchSetup heterogeneous_setup(MiB second_pool_mib = 24.0,
                                               double load = 1.0) const {
    BenchSetup out;
    // reduced runs use a reduced cluster
    out.pool = trace_jobs == 0 ? 512 : 64;
    out.machines = 2 * out.pool;
    out.cluster = sim::cm5_heterogeneous(second_pool_mib, out.pool);

    trace::Workload w = workload();
    std::uint32_t widest = 0;
    for (const auto& job : w.jobs) widest = std::max(widest, job.nodes);
    if (widest > out.machines) {
      w = trace::drop_wide_jobs(std::move(w),
                                static_cast<std::uint32_t>(out.machines));
    }
    if (load > 0.0) {
      w = trace::scale_to_load(std::move(w), out.machines, load);
    }
    out.workload = trace::sort_by_submit(std::move(w));
    return out;
  }
};

/// Emit the schema-v1 BENCH sweep record (no-op when --metrics-out is
/// empty). Records the parallel sweep's cost plus serial-vs-parallel
/// speedup; `rerun_serial` re-runs the same sweep with jobs=1 and returns
/// its stats — it is only invoked when the measured sweep was parallel.
template <typename RerunSerial>
void maybe_write_sweep_record(const BenchArgs& args, const char* bench_name,
                              const SweepStats& stats, obs::Registry& registry,
                              RerunSerial&& rerun_serial) {
  if (args.metrics_out.empty()) return;
  double serial_wall = stats.wall_seconds;
  if (stats.jobs > 1) {
    serial_wall = rerun_serial().wall_seconds;
  }
  obs::BenchRecord record(bench_name);
  record.config("jobs", static_cast<std::int64_t>(stats.jobs));
  record.config("trace_jobs", static_cast<std::int64_t>(args.trace_jobs));
  record.config("seed", static_cast<std::int64_t>(args.seed));
  record.config("sim_seed", static_cast<std::int64_t>(args.sim_seed));
  record.summary("sims_total", static_cast<double>(stats.runs));
  record.summary("failed_runs", static_cast<double>(stats.failed));
  record.summary("wall_seconds", stats.wall_seconds);
  record.summary("wall_seconds_serial", serial_wall);
  record.summary("speedup_vs_serial",
                 stats.wall_seconds > 0.0 ? serial_wall / stats.wall_seconds
                                          : 1.0);
  record.summary("sims_per_sec", stats.runs_per_sec);
  record.metrics(registry.snapshot());
  if (!record.write(args.metrics_out)) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 args.metrics_out.c_str());
  }
}

}  // namespace resmatch::exp
