// Shared command-line conventions for the bench binaries.
//
// Every experiment binary accepts:
//   --jobs=N   trace size (default: a fast reduced scale; 0 = full ~122k)
//   --seed=S   workload seed
//   --csv=PATH optional CSV dump of the printed series
// Full paper scale is the default for the figure benches unless
// --jobs overrides it; reduced scale keeps CI fast.
#pragma once

#include <cstdio>

#include "exp/experiment.hpp"
#include "util/cli.hpp"

namespace resmatch::exp {

struct BenchArgs {
  std::size_t jobs = 0;  ///< 0 = full paper scale
  std::uint64_t seed = 42;
  std::string csv;

  static BenchArgs parse(int argc, const char* const* argv,
                         std::size_t default_jobs) {
    util::CliArgs cli(argc, argv);
    BenchArgs out;
    out.jobs = static_cast<std::size_t>(
        cli.get("jobs", static_cast<std::int64_t>(default_jobs)));
    out.seed = static_cast<std::uint64_t>(
        cli.get("seed", static_cast<std::int64_t>(42)));
    out.csv = cli.get("csv", std::string{});
    for (const auto& key : cli.unused()) {
      std::fprintf(stderr, "warning: unused option --%s\n", key.c_str());
    }
    return out;
  }

  [[nodiscard]] trace::Workload workload() const {
    return standard_workload(seed, jobs);
  }
};

}  // namespace resmatch::exp
