// Shared command-line conventions and setup for the bench binaries.
//
// Every experiment binary accepts:
//   --jobs=N          trace size (default: a fast reduced scale; 0 = full
//                     ~122k)
//   --seed=S          workload seed
//   --sim-seed=S      simulator seed (failure-time draws)
//   --max-attempts=N  per-job attempt cap before the simulator drops it
//   --csv=PATH        optional CSV dump of the printed series
// Full paper scale is the default for the figure benches unless
// --jobs overrides it; reduced scale keeps CI fast.
//
// The standard experiment fixture — the paper's two-pool heterogeneous
// cluster plus a load-scaled, submit-sorted workload — is built by
// heterogeneous_setup() so each driver declares only its sweep.
#pragma once

#include <algorithm>
#include <cstdio>
#include <utility>

#include "exp/experiment.hpp"
#include "util/cli.hpp"

namespace resmatch::exp {

/// The standard fixture: paper cluster + prepared workload. `machines` is
/// the total machine count (2 * pool), the denominator of offered load.
struct BenchSetup {
  trace::Workload workload;
  sim::ClusterSpec cluster;
  std::size_t pool = 0;
  std::size_t machines = 0;
};

struct BenchArgs {
  std::size_t jobs = 0;  ///< 0 = full paper scale
  std::uint64_t seed = 42;
  std::uint64_t sim_seed = 7;
  std::uint32_t max_attempts = 64;
  std::string csv;

  static BenchArgs parse(int argc, const char* const* argv,
                         std::size_t default_jobs) {
    util::CliArgs cli(argc, argv);
    BenchArgs out;
    out.jobs = static_cast<std::size_t>(
        cli.get("jobs", static_cast<std::int64_t>(default_jobs)));
    out.seed = static_cast<std::uint64_t>(
        cli.get("seed", static_cast<std::int64_t>(42)));
    out.sim_seed = static_cast<std::uint64_t>(
        cli.get("sim-seed", static_cast<std::int64_t>(7)));
    out.max_attempts = static_cast<std::uint32_t>(
        cli.get("max-attempts", static_cast<std::int64_t>(64)));
    out.csv = cli.get("csv", std::string{});
    for (const auto& key : cli.unused()) {
      std::fprintf(stderr, "warning: unused option --%s\n", key.c_str());
    }
    return out;
  }

  [[nodiscard]] trace::Workload workload() const {
    return standard_workload(seed, jobs);
  }

  /// Simulator configuration with the shared CLI knobs applied.
  [[nodiscard]] sim::SimulationConfig sim_config() const {
    sim::SimulationConfig config;
    config.seed = sim_seed;
    config.max_attempts_per_job = max_attempts;
    return config;
  }

  /// A RunSpec carrying sim_config(); drivers override estimator/policy
  /// per sweep point.
  [[nodiscard]] RunSpec run_spec() const {
    RunSpec spec;
    spec.sim = sim_config();
    return spec;
  }

  /// The paper's experiment fixture: 32 MiB pool + `second_pool_mib` pool
  /// (512 machines each at full scale, 64 at reduced scale), workload
  /// narrowed to jobs that fit, rescaled to `load`, sorted by submit time.
  [[nodiscard]] BenchSetup heterogeneous_setup(MiB second_pool_mib = 24.0,
                                               double load = 1.0) const {
    BenchSetup out;
    out.pool = jobs == 0 ? 512 : 64;  // reduced runs use a reduced cluster
    out.machines = 2 * out.pool;
    out.cluster = sim::cm5_heterogeneous(second_pool_mib, out.pool);

    trace::Workload w = workload();
    std::uint32_t widest = 0;
    for (const auto& job : w.jobs) widest = std::max(widest, job.nodes);
    if (widest > out.machines) {
      w = trace::drop_wide_jobs(std::move(w),
                                static_cast<std::uint32_t>(out.machines));
    }
    if (load > 0.0) {
      w = trace::scale_to_load(std::move(w), out.machines, load);
    }
    out.workload = trace::sort_by_submit(std::move(w));
    return out;
  }
};

}  // namespace resmatch::exp
