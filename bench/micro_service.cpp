// micro_service: throughput scaling of the matchd service layer.
//
// Drives a svc::Matchd instance from 1..16 client threads, each running a
// closed loop of submit -> feedback over a CM5-like population of
// similarity groups, and reports jobs/sec per worker count plus the
// speedup over single-threaded. The synchronous path (clients call the
// thread-safe API directly; scaling comes from the store's shard
// striping) is measured twice — uninstrumented, then with an
// obs::Registry attached — so the overhead of the metrics layer is a
// printed column, not a guess. A third series routes the same load
// through the admission queue + worker pool to show the pipeline's
// overhead and its backpressure counters.
//
//   ./build/bench/micro_service [--jobs=N] [--groups=G] [--csv=PATH]
//                               [--metrics-out=PATH] [--max-threads=T]
//                               [--wal-dir=DIR] [--wal-fsync-every=N]
//                               [--fault-rate=P] [--fault-seed=S]
//                               [--batch-max=B] [--batch-compare=PATH]
//
// --jobs is the per-thread operation count (default 200000).
// --metrics-out writes a schema-v1 BENCH record (see obs/bench_record.hpp)
// with p50/p99 submit latency, jobs/sec, instrumentation overhead, and
// the full registry dump of the widest instrumented run.
// --wal-dir prices durability: every measured service writes its WAL to a
// fresh subdirectory of DIR, so the throughput columns become with-WAL
// numbers directly comparable to a run without the flag. --fault-rate arms
// the deterministic injector (see bench/micro_faults.cpp for the targeted
// fault-path microbench).
// --batch-max sets the worker drain batch size for the queued series.
// --batch-compare=PATH runs the batching perf-smoke instead of the scaling
// series: the WAL-backed queued pipeline at batch_max=1 vs batch_max=64
// (same durability guarantee — one forced fsync commit point per batch —
// so the ratio is the fsync/lock amortization win), plus the compiled
// bytecode matcher vs the tree-walking evaluator over a 4096-machine
// table, written to PATH as a schema-v1 BENCH record.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/capacity_ladder.hpp"
#include "match/classad.hpp"
#include "match/compiled.hpp"
#include "obs/bench_record.hpp"
#include "obs/metrics.hpp"
#include "svc/matchd.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/fault.hpp"

namespace {

using namespace resmatch;

/// Durability template applied to every measured service (wal_dir empty =
/// durability off, the default). Each run gets a fresh subdirectory so no
/// run replays or appends to another's log.
svc::DurabilityConfig g_durability;

/// Worker drain batch size for queued (async) runs.
std::size_t g_batch_max = 32;

/// Backpressure handling for queued runs. The scaling series falls back
/// to the synchronous API on kFull (a client that must make progress);
/// the batch-compare mode spins instead, so the measured number is the
/// queued pipeline's throughput, not a blend of the two paths.
bool g_spin_on_full = false;

svc::DurabilityConfig durability_for_run() {
  static std::atomic<std::uint64_t> next_run{0};
  svc::DurabilityConfig d = g_durability;
  if (!d.wal_dir.empty()) {
    d.wal_dir += "/run-" + std::to_string(
        next_run.fetch_add(1, std::memory_order_relaxed));
  }
  return d;
}

trace::JobRecord make_job(std::uint64_t n, std::size_t groups) {
  trace::JobRecord job;
  job.id = n;
  job.user = static_cast<UserId>(n % groups);
  job.app = static_cast<AppId>((n / groups) % 17);
  job.requested_mem_mib = 32.0;
  job.used_mem_mib = 4.0 + static_cast<double>(n % 7);
  job.nodes = 1;
  job.runtime = 60.0;
  return job;
}

core::Feedback outcome_for(const trace::JobRecord& job, MiB granted) {
  core::Feedback fb;
  fb.success = granted + 1e-9 >= job.used_mem_mib;
  fb.granted_mib = granted;
  return fb;
}

/// One closed-loop client: submit + feedback, `ops` times.
void run_client(svc::Matchd& service, std::size_t thread_index,
                std::size_t ops, std::size_t groups, bool async) {
  for (std::size_t i = 0; i < ops; ++i) {
    const trace::JobRecord job = make_job(thread_index * ops + i, groups);
    if (async) {
      // The decision callback re-enters the admission queue so feedback
      // rides the batched WAL commit point too; under backpressure it
      // degrades to the synchronous call, as a real client would.
      const auto on_decision = [&service, job](const svc::MatchDecision& d) {
        const core::Feedback fb = outcome_for(job, d.granted_mib);
        if (service.feedback_async(svc::JobOutcome{job, fb}) !=
            svc::PushResult::kOk) {
          service.feedback(job, fb);
        }
      };
      auto pushed = service.submit_async(job, on_decision);
      while (g_spin_on_full && pushed == svc::PushResult::kFull) {
        std::this_thread::yield();
        pushed = service.submit_async(job, on_decision);
      }
      if (pushed != svc::PushResult::kOk) {
        // Backpressure: do the work inline, as a real client would retry.
        const auto decision = service.submit(job);
        service.feedback(job, outcome_for(job, decision.granted_mib));
      }
    } else {
      const auto decision = service.submit(job);
      service.feedback(job, outcome_for(job, decision.granted_mib));
    }
  }
}

struct Sample {
  std::size_t threads = 0;
  double jobs_per_sec = 0.0;
  std::uint64_t rejected = 0;
  /// Submit-latency percentiles (µs), instrumented runs only.
  double submit_p50_us = 0.0;
  double submit_p99_us = 0.0;
};

/// `registry` non-null = attach the observability layer to the run. The
/// snapshot is taken while the service is alive so the pull providers
/// (queue depth, store occupancy) are still registered.
Sample measure(std::size_t threads, std::size_t ops_per_thread,
               std::size_t groups, bool async, obs::Registry* registry,
               obs::MetricsSnapshot* snapshot_out = nullptr) {
  svc::MatchdConfig config;
  config.store.shards = 64;
  config.queue_capacity = 4096;
  config.workers = async ? threads : 0;
  config.batch_max = g_batch_max;
  config.metrics = registry;
  config.durability = durability_for_run();
  svc::Matchd service(config);
  service.set_ladder(
      core::CapacityLadder({4.0, 8.0, 16.0, 24.0, 32.0, 64.0, 128.0}));

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      clients.emplace_back(run_client, std::ref(service), t, ops_per_thread,
                           groups, async);
    }
    for (auto& c : clients) c.join();
    if (async) service.drain();
  }
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Sample s;
  s.threads = threads;
  s.jobs_per_sec =
      static_cast<double>(threads * ops_per_thread) / elapsed;
  s.rejected = service.stats().async_rejected_full;
  if (registry != nullptr) {
    const obs::MetricsSnapshot snap = registry->snapshot();
    if (const auto* m = snap.find("resmatch_matchd_op_latency_seconds",
                                  {{"op", "submit"}})) {
      s.submit_p50_us = m->histogram.percentile(50.0) * 1e6;
      s.submit_p99_us = m->histogram.percentile(99.0) * 1e6;
    }
    if (snapshot_out != nullptr) *snapshot_out = snap;
  }
  return s;
}

/// A CM5-flavored machine-ad population for the matcher benchmark: mixed
/// memory/cpu shapes, two architectures, a minority of machines with
/// their own requirements (three distinct sources -> three compiled
/// groups plus the unconstrained group).
std::vector<match::ClassAd> make_machines(std::size_t count) {
  std::vector<match::ClassAd> machines;
  machines.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    match::ClassAd m;
    m.set("memory", static_cast<double>(4 << (i % 6)));
    m.set("cpus", static_cast<double>(1 + i % 8));
    m.set("load", static_cast<double>(i % 10) / 10.0);
    m.set("arch", match::Value(i % 3 == 0 ? std::string("arm64")
                                          : std::string("x86_64")));
    if (i % 4 == 1) {
      m.set_expr("requirements", "other.owner_prio >= 1");
    } else if (i % 4 == 2) {
      m.set_expr("requirements", "other.req_memory <= my.memory * 2");
    } else if (i % 16 == 3) {
      m.set_expr("requirements", "other.owner_prio >= 1 && load < 0.9");
    }
    machines.push_back(std::move(m));
  }
  return machines;
}

struct MatcherSample {
  double interp_rows_per_sec = 0.0;
  double compiled_rows_per_sec = 0.0;  ///< SIMD prefilter (the default)
  double scalar_rows_per_sec = 0.0;    ///< same pipeline, scalar kernel
  std::uint64_t fallback_rows = 0;
  std::uint64_t prefiltered_rows = 0;  ///< per pass, SIMD run
  std::size_t matched = 0;  ///< sanity: all paths must agree
};

MatcherSample measure_matcher(std::size_t machine_count, int passes) {
  const std::vector<match::ClassAd> machines = make_machines(machine_count);
  match::ClassAd request;
  request.set("req_memory", 16.0);
  request.set("owner_prio", 2.0);
  request.set_expr("requirements",
                   "other.memory >= my.req_memory && other.arch == "
                   "\"x86_64\" && other.cpus >= 2");
  request.set_expr("rank", "other.memory * (1 - other.load)");

  MatcherSample sample;
  std::vector<std::size_t> interp_ranked;
  const auto t0 = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) {
    interp_ranked = match::rank_matches(request, machines);
  }
  const double interp_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Table build is once per (machine set); compile is once per request —
  // both inside the timed region, amortized over `passes` matches the
  // matchmaker's negotiation-cycle shape (one table, many requests).
  // The SIMD-prefilter (default) and scalar-kernel arms interleave per
  // pass so load drift on the host cannot masquerade as a kernel delta.
  std::vector<std::size_t> compiled_ranked;
  std::vector<std::size_t> scalar_ranked;
  match::CompiledMatcher::Stats stats;
  double compiled_s = 0.0;
  double scalar_s = 0.0;
  const auto t1 = std::chrono::steady_clock::now();
  const match::MachineTable table = match::MachineTable::build(machines);
  compiled_s +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();
  for (int p = 0; p < passes; ++p) {
    const auto a0 = std::chrono::steady_clock::now();
    compiled_ranked = match::rank_matches_compiled(request, table, &stats);
    const auto a1 = std::chrono::steady_clock::now();
    compiled_s += std::chrono::duration<double>(a1 - a0).count();
    match::CompiledMatcher matcher(request, table);
    matcher.set_simd_enabled(false);
    scalar_ranked = matcher.rank_all();
    scalar_s += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - a1)
                    .count();
  }

  if (compiled_ranked != interp_ranked) {
    std::fprintf(stderr,
                 "FATAL: compiled matcher diverged from the tree walker\n");
    std::exit(1);
  }
  if (scalar_ranked != interp_ranked) {
    std::fprintf(
        stderr,
        "FATAL: scalar-prefilter matcher diverged from the tree walker\n");
    std::exit(1);
  }

  const double rows = static_cast<double>(machine_count) * passes;
  sample.interp_rows_per_sec = rows / interp_s;
  sample.compiled_rows_per_sec = rows / compiled_s;
  sample.scalar_rows_per_sec = rows / scalar_s;
  sample.fallback_rows = stats.fallback_rows;
  sample.prefiltered_rows = stats.prefiltered_rows;
  sample.matched = interp_ranked.size();
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs cli(argc, argv);
  const auto ops = static_cast<std::size_t>(
      cli.get("jobs", static_cast<std::int64_t>(200000)));
  const auto groups = static_cast<std::size_t>(
      cli.get("groups", static_cast<std::int64_t>(1024)));
  const auto max_threads = static_cast<std::size_t>(
      cli.get("max-threads", static_cast<std::int64_t>(16)));
  const std::string csv = cli.get("csv", std::string{});
  const std::string metrics_out = cli.get("metrics-out", std::string{});
  const std::string wal_dir = cli.get("wal-dir", std::string{});
  const auto wal_fsync_every = static_cast<std::size_t>(
      cli.get("wal-fsync-every", static_cast<std::int64_t>(64)));
  const double fault_rate = cli.get("fault-rate", 0.0);
  const auto fault_seed = static_cast<std::uint64_t>(
      cli.get("fault-seed", static_cast<std::int64_t>(42)));

  g_batch_max = static_cast<std::size_t>(
      cli.get("batch-max", static_cast<std::int64_t>(32)));
  const std::string batch_compare = cli.get("batch-compare", std::string{});

  util::FaultInjector injector(fault_seed);
  g_durability.wal_dir = wal_dir;
  g_durability.wal_fsync_every = wal_fsync_every;
  if (fault_rate > 0.0) {
    // Keep runs of injected failures shorter than the retry budget so
    // the bench measures the retry path, not degraded-mode pass-through.
    injector.arm_all(util::FaultSpec{fault_rate, /*max_consecutive=*/3});
    g_durability.faults = &injector;
  }

  if (!batch_compare.empty()) {
    // Perf-smoke: the WAL-backed queued pipeline, batched vs unbatched.
    // Both runs make every operation durable at its batch commit point;
    // batch_max=1 is the pre-batching behavior (one flush+fsync per op).
    const bool own_wal = wal_dir.empty();
    if (own_wal) {
      g_durability.wal_dir =
          (std::filesystem::temp_directory_path() / "resmatch_micro_batch")
              .string();
      std::filesystem::remove_all(g_durability.wal_dir);
    }
    const std::size_t threads = std::clamp<std::size_t>(max_threads, 1, 4);
    const std::size_t compare_ops = std::min<std::size_t>(ops, 20000);
    g_spin_on_full = true;

    g_batch_max = 1;
    obs::Registry registry1;
    const Sample batch1 =
        measure(threads, compare_ops, groups, /*async=*/true, &registry1);
    g_batch_max = 64;
    obs::Registry registry64;
    obs::MetricsSnapshot snapshot64;
    const Sample batch64 = measure(threads, compare_ops, groups,
                                   /*async=*/true, &registry64, &snapshot64);
    const double batch_speedup =
        batch1.jobs_per_sec > 0.0 ? batch64.jobs_per_sec / batch1.jobs_per_sec
                                  : 0.0;

    const std::size_t machine_count = 4096;
    const MatcherSample matcher = measure_matcher(machine_count, 50);
    const double match_speedup =
        matcher.interp_rows_per_sec > 0.0
            ? matcher.compiled_rows_per_sec / matcher.interp_rows_per_sec
            : 0.0;
    const double simd_speedup =
        matcher.scalar_rows_per_sec > 0.0
            ? matcher.compiled_rows_per_sec / matcher.scalar_rows_per_sec
            : 0.0;

    std::printf("batched admission, %zu threads x %zu ops, WAL at %s\n",
                threads, compare_ops, g_durability.wal_dir.c_str());
    std::printf("  batch_max=1     %12.0f ops/s\n", batch1.jobs_per_sec);
    std::printf("  batch_max=64    %12.0f ops/s   (%.2fx)\n",
                batch64.jobs_per_sec, batch_speedup);
    std::printf("compiled matcher, %zu machines (%zu matched, "
                "%llu fallback rows, %llu prefiltered/pass)\n",
                machine_count, matcher.matched,
                static_cast<unsigned long long>(matcher.fallback_rows),
                static_cast<unsigned long long>(matcher.prefiltered_rows));
    std::printf("  tree walker     %12.0f rows/s\n",
                matcher.interp_rows_per_sec);
    std::printf("  bytecode+simd   %12.0f rows/s   (%.2fx)\n",
                matcher.compiled_rows_per_sec, match_speedup);
    std::printf("  bytecode scalar %12.0f rows/s   (simd kernel %.2fx)\n",
                matcher.scalar_rows_per_sec, simd_speedup);

    obs::BenchRecord record("micro_service_batch");
    record.config("threads", static_cast<std::int64_t>(threads));
    record.config("jobs_per_thread", static_cast<std::int64_t>(compare_ops));
    record.config("groups", static_cast<std::int64_t>(groups));
    record.config("machines", static_cast<std::int64_t>(machine_count));
    record.config("wal", g_durability.wal_dir.empty() ? "off" : "on");
    record.summary("ops_per_sec_batch1", batch1.jobs_per_sec);
    record.summary("ops_per_sec_batch64", batch64.jobs_per_sec);
    record.summary("batch_speedup", batch_speedup);
    record.summary("match_rows_per_sec_interp", matcher.interp_rows_per_sec);
    record.summary("match_rows_per_sec_compiled",
                   matcher.compiled_rows_per_sec);
    record.summary("match_speedup", match_speedup);
    record.summary("match_rows_per_sec_compiled_scalar",
                   matcher.scalar_rows_per_sec);
    record.summary("match_simd_speedup", simd_speedup);
    record.summary("match_prefiltered_rows",
                   static_cast<double>(matcher.prefiltered_rows));
    record.metrics(snapshot64);
    if (own_wal) std::filesystem::remove_all(g_durability.wal_dir);
    if (!record.write(batch_compare)) {
      std::fprintf(stderr, "FAIL: could not write %s\n",
                   batch_compare.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", batch_compare.c_str());
    return 0;
  }

  std::vector<std::size_t> counts;
  for (const std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
    if (n <= max_threads) counts.push_back(n);
  }
  if (counts.empty()) counts.push_back(1);

  std::printf("matchd throughput, %zu ops/thread, %zu groups\n\n", ops,
              groups);
  std::printf("%-8s %-14s %-8s %-14s %-9s %-14s %-8s %-9s\n", "threads",
              "sync jobs/s", "speedup", "instr jobs/s", "overhead",
              "queued jobs/s", "speedup", "rejected");

  double sync_base = 0.0;
  double async_base = 0.0;
  struct Row {
    Sample sync, instr, async;
  };
  std::vector<Row> rows;
  // Registry snapshot of the widest instrumented run, for --metrics-out.
  obs::MetricsSnapshot last_snapshot;
  for (const std::size_t n : counts) {
    const Sample sync =
        measure(n, ops, groups, /*async=*/false, /*registry=*/nullptr);
    obs::Registry registry;  // fresh per run: no cross-run accumulation
    const Sample instr = measure(n, ops, groups, /*async=*/false, &registry,
                                 &last_snapshot);
    const Sample async =
        measure(n, ops, groups, /*async=*/true, /*registry=*/nullptr);
    if (n == counts.front()) {
      sync_base = sync.jobs_per_sec;
      async_base = async.jobs_per_sec;
    }
    const double overhead_pct =
        sync.jobs_per_sec > 0.0
            ? (1.0 - instr.jobs_per_sec / sync.jobs_per_sec) * 100.0
            : 0.0;
    std::printf("%-8zu %-14.0f %-8.2f %-14.0f %-8.1f%% %-14.0f %-8.2f %-9llu\n",
                n, sync.jobs_per_sec, sync.jobs_per_sec / sync_base,
                instr.jobs_per_sec, overhead_pct, async.jobs_per_sec,
                async.jobs_per_sec / async_base,
                static_cast<unsigned long long>(async.rejected));
    rows.push_back({sync, instr, async});
  }

  if (!csv.empty()) {
    util::CsvWriter out(csv);
    out.header({"threads", "sync_jobs_per_sec", "sync_speedup",
                "instr_jobs_per_sec", "overhead_pct", "queued_jobs_per_sec",
                "queued_speedup", "queued_rejected"});
    for (const auto& row : rows) {
      const double overhead_pct =
          row.sync.jobs_per_sec > 0.0
              ? (1.0 - row.instr.jobs_per_sec / row.sync.jobs_per_sec) * 100.0
              : 0.0;
      out.row({std::to_string(row.sync.threads),
               std::to_string(row.sync.jobs_per_sec),
               std::to_string(row.sync.jobs_per_sec / sync_base),
               std::to_string(row.instr.jobs_per_sec),
               std::to_string(overhead_pct),
               std::to_string(row.async.jobs_per_sec),
               std::to_string(row.async.jobs_per_sec / async_base),
               std::to_string(row.async.rejected)});
    }
    std::printf("\nwrote %s\n", csv.c_str());
  }

  if (!metrics_out.empty()) {
    const Row& widest = rows.back();
    const double overhead_pct =
        widest.sync.jobs_per_sec > 0.0
            ? (1.0 - widest.instr.jobs_per_sec / widest.sync.jobs_per_sec) *
                  100.0
            : 0.0;
    obs::BenchRecord record("micro_service");
    record.config("jobs_per_thread", static_cast<std::int64_t>(ops));
    record.config("groups", static_cast<std::int64_t>(groups));
    record.config("threads", static_cast<std::int64_t>(widest.sync.threads));
    record.summary("jobs_per_sec", widest.instr.jobs_per_sec);
    record.summary("jobs_per_sec_baseline", widest.sync.jobs_per_sec);
    record.summary("overhead_pct", overhead_pct);
    record.summary("submit_p50_us", widest.instr.submit_p50_us);
    record.summary("submit_p99_us", widest.instr.submit_p99_us);
    record.summary("queued_jobs_per_sec", widest.async.jobs_per_sec);
    record.summary("backpressure_rejects",
                   static_cast<double>(widest.async.rejected));
    record.metrics(last_snapshot);
    if (!record.write(metrics_out)) {
      std::fprintf(stderr, "FAIL: could not write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", metrics_out.c_str());
  }
  return 0;
}
