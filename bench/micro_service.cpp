// micro_service: throughput scaling of the matchd service layer.
//
// Drives a svc::Matchd instance from 1..16 client threads, each running a
// closed loop of submit -> feedback over a CM5-like population of
// similarity groups, and reports jobs/sec per worker count plus the
// speedup over single-threaded. The synchronous path (clients call the
// thread-safe API directly; scaling comes from the store's shard
// striping) is measured twice — uninstrumented, then with an
// obs::Registry attached — so the overhead of the metrics layer is a
// printed column, not a guess. A third series routes the same load
// through the admission queue + worker pool to show the pipeline's
// overhead and its backpressure counters.
//
//   ./build/bench/micro_service [--jobs=N] [--groups=G] [--csv=PATH]
//                               [--metrics-out=PATH] [--max-threads=T]
//                               [--wal-dir=DIR] [--wal-fsync-every=N]
//                               [--fault-rate=P] [--fault-seed=S]
//
// --jobs is the per-thread operation count (default 200000).
// --metrics-out writes a schema-v1 BENCH record (see obs/bench_record.hpp)
// with p50/p99 submit latency, jobs/sec, instrumentation overhead, and
// the full registry dump of the widest instrumented run.
// --wal-dir prices durability: every measured service writes its WAL to a
// fresh subdirectory of DIR, so the throughput columns become with-WAL
// numbers directly comparable to a run without the flag. --fault-rate arms
// the deterministic injector (see bench/micro_faults.cpp for the targeted
// fault-path microbench).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/capacity_ladder.hpp"
#include "obs/bench_record.hpp"
#include "obs/metrics.hpp"
#include "svc/matchd.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/fault.hpp"

namespace {

using namespace resmatch;

/// Durability template applied to every measured service (wal_dir empty =
/// durability off, the default). Each run gets a fresh subdirectory so no
/// run replays or appends to another's log.
svc::DurabilityConfig g_durability;

svc::DurabilityConfig durability_for_run() {
  static std::atomic<std::uint64_t> next_run{0};
  svc::DurabilityConfig d = g_durability;
  if (!d.wal_dir.empty()) {
    d.wal_dir += "/run-" + std::to_string(
        next_run.fetch_add(1, std::memory_order_relaxed));
  }
  return d;
}

trace::JobRecord make_job(std::uint64_t n, std::size_t groups) {
  trace::JobRecord job;
  job.id = n;
  job.user = static_cast<UserId>(n % groups);
  job.app = static_cast<AppId>((n / groups) % 17);
  job.requested_mem_mib = 32.0;
  job.used_mem_mib = 4.0 + static_cast<double>(n % 7);
  job.nodes = 1;
  job.runtime = 60.0;
  return job;
}

core::Feedback outcome_for(const trace::JobRecord& job, MiB granted) {
  core::Feedback fb;
  fb.success = granted + 1e-9 >= job.used_mem_mib;
  fb.granted_mib = granted;
  return fb;
}

/// One closed-loop client: submit + feedback, `ops` times.
void run_client(svc::Matchd& service, std::size_t thread_index,
                std::size_t ops, std::size_t groups, bool async) {
  for (std::size_t i = 0; i < ops; ++i) {
    const trace::JobRecord job = make_job(thread_index * ops + i, groups);
    if (async) {
      const auto pushed = service.submit_async(
          job, [&service, job](const svc::MatchDecision& d) {
            service.feedback(job, outcome_for(job, d.granted_mib));
          });
      if (pushed != svc::PushResult::kOk) {
        // Backpressure: do the work inline, as a real client would retry.
        const auto decision = service.submit(job);
        service.feedback(job, outcome_for(job, decision.granted_mib));
      }
    } else {
      const auto decision = service.submit(job);
      service.feedback(job, outcome_for(job, decision.granted_mib));
    }
  }
}

struct Sample {
  std::size_t threads = 0;
  double jobs_per_sec = 0.0;
  std::uint64_t rejected = 0;
  /// Submit-latency percentiles (µs), instrumented runs only.
  double submit_p50_us = 0.0;
  double submit_p99_us = 0.0;
};

/// `registry` non-null = attach the observability layer to the run. The
/// snapshot is taken while the service is alive so the pull providers
/// (queue depth, store occupancy) are still registered.
Sample measure(std::size_t threads, std::size_t ops_per_thread,
               std::size_t groups, bool async, obs::Registry* registry,
               obs::MetricsSnapshot* snapshot_out = nullptr) {
  svc::MatchdConfig config;
  config.store.shards = 64;
  config.queue_capacity = 4096;
  config.workers = async ? threads : 0;
  config.metrics = registry;
  config.durability = durability_for_run();
  svc::Matchd service(config);
  service.set_ladder(
      core::CapacityLadder({4.0, 8.0, 16.0, 24.0, 32.0, 64.0, 128.0}));

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      clients.emplace_back(run_client, std::ref(service), t, ops_per_thread,
                           groups, async);
    }
    for (auto& c : clients) c.join();
    if (async) service.drain();
  }
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Sample s;
  s.threads = threads;
  s.jobs_per_sec =
      static_cast<double>(threads * ops_per_thread) / elapsed;
  s.rejected = service.stats().async_rejected_full;
  if (registry != nullptr) {
    const obs::MetricsSnapshot snap = registry->snapshot();
    if (const auto* m = snap.find("resmatch_matchd_op_latency_seconds",
                                  {{"op", "submit"}})) {
      s.submit_p50_us = m->histogram.percentile(50.0) * 1e6;
      s.submit_p99_us = m->histogram.percentile(99.0) * 1e6;
    }
    if (snapshot_out != nullptr) *snapshot_out = snap;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs cli(argc, argv);
  const auto ops = static_cast<std::size_t>(
      cli.get("jobs", static_cast<std::int64_t>(200000)));
  const auto groups = static_cast<std::size_t>(
      cli.get("groups", static_cast<std::int64_t>(1024)));
  const auto max_threads = static_cast<std::size_t>(
      cli.get("max-threads", static_cast<std::int64_t>(16)));
  const std::string csv = cli.get("csv", std::string{});
  const std::string metrics_out = cli.get("metrics-out", std::string{});
  const std::string wal_dir = cli.get("wal-dir", std::string{});
  const auto wal_fsync_every = static_cast<std::size_t>(
      cli.get("wal-fsync-every", static_cast<std::int64_t>(64)));
  const double fault_rate = cli.get("fault-rate", 0.0);
  const auto fault_seed = static_cast<std::uint64_t>(
      cli.get("fault-seed", static_cast<std::int64_t>(42)));

  util::FaultInjector injector(fault_seed);
  g_durability.wal_dir = wal_dir;
  g_durability.wal_fsync_every = wal_fsync_every;
  if (fault_rate > 0.0) {
    // Keep runs of injected failures shorter than the retry budget so
    // the bench measures the retry path, not degraded-mode pass-through.
    injector.arm_all(util::FaultSpec{fault_rate, /*max_consecutive=*/3});
    g_durability.faults = &injector;
  }

  std::vector<std::size_t> counts;
  for (const std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
    if (n <= max_threads) counts.push_back(n);
  }
  if (counts.empty()) counts.push_back(1);

  std::printf("matchd throughput, %zu ops/thread, %zu groups\n\n", ops,
              groups);
  std::printf("%-8s %-14s %-8s %-14s %-9s %-14s %-8s %-9s\n", "threads",
              "sync jobs/s", "speedup", "instr jobs/s", "overhead",
              "queued jobs/s", "speedup", "rejected");

  double sync_base = 0.0;
  double async_base = 0.0;
  struct Row {
    Sample sync, instr, async;
  };
  std::vector<Row> rows;
  // Registry snapshot of the widest instrumented run, for --metrics-out.
  obs::MetricsSnapshot last_snapshot;
  for (const std::size_t n : counts) {
    const Sample sync =
        measure(n, ops, groups, /*async=*/false, /*registry=*/nullptr);
    obs::Registry registry;  // fresh per run: no cross-run accumulation
    const Sample instr = measure(n, ops, groups, /*async=*/false, &registry,
                                 &last_snapshot);
    const Sample async =
        measure(n, ops, groups, /*async=*/true, /*registry=*/nullptr);
    if (n == counts.front()) {
      sync_base = sync.jobs_per_sec;
      async_base = async.jobs_per_sec;
    }
    const double overhead_pct =
        sync.jobs_per_sec > 0.0
            ? (1.0 - instr.jobs_per_sec / sync.jobs_per_sec) * 100.0
            : 0.0;
    std::printf("%-8zu %-14.0f %-8.2f %-14.0f %-8.1f%% %-14.0f %-8.2f %-9llu\n",
                n, sync.jobs_per_sec, sync.jobs_per_sec / sync_base,
                instr.jobs_per_sec, overhead_pct, async.jobs_per_sec,
                async.jobs_per_sec / async_base,
                static_cast<unsigned long long>(async.rejected));
    rows.push_back({sync, instr, async});
  }

  if (!csv.empty()) {
    util::CsvWriter out(csv);
    out.header({"threads", "sync_jobs_per_sec", "sync_speedup",
                "instr_jobs_per_sec", "overhead_pct", "queued_jobs_per_sec",
                "queued_speedup", "queued_rejected"});
    for (const auto& row : rows) {
      const double overhead_pct =
          row.sync.jobs_per_sec > 0.0
              ? (1.0 - row.instr.jobs_per_sec / row.sync.jobs_per_sec) * 100.0
              : 0.0;
      out.row({std::to_string(row.sync.threads),
               std::to_string(row.sync.jobs_per_sec),
               std::to_string(row.sync.jobs_per_sec / sync_base),
               std::to_string(row.instr.jobs_per_sec),
               std::to_string(overhead_pct),
               std::to_string(row.async.jobs_per_sec),
               std::to_string(row.async.jobs_per_sec / async_base),
               std::to_string(row.async.rejected)});
    }
    std::printf("\nwrote %s\n", csv.c_str());
  }

  if (!metrics_out.empty()) {
    const Row& widest = rows.back();
    const double overhead_pct =
        widest.sync.jobs_per_sec > 0.0
            ? (1.0 - widest.instr.jobs_per_sec / widest.sync.jobs_per_sec) *
                  100.0
            : 0.0;
    obs::BenchRecord record("micro_service");
    record.config("jobs_per_thread", static_cast<std::int64_t>(ops));
    record.config("groups", static_cast<std::int64_t>(groups));
    record.config("threads", static_cast<std::int64_t>(widest.sync.threads));
    record.summary("jobs_per_sec", widest.instr.jobs_per_sec);
    record.summary("jobs_per_sec_baseline", widest.sync.jobs_per_sec);
    record.summary("overhead_pct", overhead_pct);
    record.summary("submit_p50_us", widest.instr.submit_p50_us);
    record.summary("submit_p99_us", widest.instr.submit_p99_us);
    record.summary("queued_jobs_per_sec", widest.async.jobs_per_sec);
    record.summary("backpressure_rejects",
                   static_cast<double>(widest.async.rejected));
    record.metrics(last_snapshot);
    if (!record.write(metrics_out)) {
      std::fprintf(stderr, "FAIL: could not write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", metrics_out.c_str());
  }
  return 0;
}
