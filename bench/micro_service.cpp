// micro_service: throughput scaling of the matchd service layer.
//
// Drives a svc::Matchd instance from 1..16 client threads, each running a
// closed loop of submit -> feedback over a CM5-like population of
// similarity groups, and reports jobs/sec per worker count plus the
// speedup over single-threaded. The synchronous path (clients call the
// thread-safe API directly; scaling comes from the store's shard
// striping) is the primary measurement; a second series routes the same
// load through the admission queue + worker pool to show the pipeline's
// overhead and its backpressure counters.
//
//   ./build/bench/micro_service [--jobs=N] [--groups=G] [--csv=PATH]
//
// --jobs is the per-thread operation count (default 200000).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/capacity_ladder.hpp"
#include "svc/matchd.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace {

using namespace resmatch;

trace::JobRecord make_job(std::uint64_t n, std::size_t groups) {
  trace::JobRecord job;
  job.id = n;
  job.user = static_cast<UserId>(n % groups);
  job.app = static_cast<AppId>((n / groups) % 17);
  job.requested_mem_mib = 32.0;
  job.used_mem_mib = 4.0 + static_cast<double>(n % 7);
  job.nodes = 1;
  job.runtime = 60.0;
  return job;
}

core::Feedback outcome_for(const trace::JobRecord& job, MiB granted) {
  core::Feedback fb;
  fb.success = granted + 1e-9 >= job.used_mem_mib;
  fb.granted_mib = granted;
  return fb;
}

/// One closed-loop client: submit + feedback, `ops` times.
void run_client(svc::Matchd& service, std::size_t thread_index,
                std::size_t ops, std::size_t groups, bool async) {
  for (std::size_t i = 0; i < ops; ++i) {
    const trace::JobRecord job = make_job(thread_index * ops + i, groups);
    if (async) {
      const auto pushed = service.submit_async(
          job, [&service, job](const svc::MatchDecision& d) {
            service.feedback(job, outcome_for(job, d.granted_mib));
          });
      if (pushed != svc::PushResult::kOk) {
        // Backpressure: do the work inline, as a real client would retry.
        const auto decision = service.submit(job);
        service.feedback(job, outcome_for(job, decision.granted_mib));
      }
    } else {
      const auto decision = service.submit(job);
      service.feedback(job, outcome_for(job, decision.granted_mib));
    }
  }
}

struct Sample {
  std::size_t threads = 0;
  double jobs_per_sec = 0.0;
  std::uint64_t rejected = 0;
};

Sample measure(std::size_t threads, std::size_t ops_per_thread,
               std::size_t groups, bool async) {
  svc::MatchdConfig config;
  config.store.shards = 64;
  config.queue_capacity = 4096;
  config.workers = async ? threads : 0;
  svc::Matchd service(config);
  service.set_ladder(
      core::CapacityLadder({4.0, 8.0, 16.0, 24.0, 32.0, 64.0, 128.0}));

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      clients.emplace_back(run_client, std::ref(service), t, ops_per_thread,
                           groups, async);
    }
    for (auto& c : clients) c.join();
    if (async) service.drain();
  }
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Sample s;
  s.threads = threads;
  s.jobs_per_sec =
      static_cast<double>(threads * ops_per_thread) / elapsed;
  s.rejected = service.stats().async_rejected_full;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs cli(argc, argv);
  const auto ops = static_cast<std::size_t>(
      cli.get("jobs", static_cast<std::int64_t>(200000)));
  const auto groups = static_cast<std::size_t>(
      cli.get("groups", static_cast<std::int64_t>(1024)));
  const std::string csv = cli.get("csv", std::string{});

  const std::size_t counts[] = {1, 2, 4, 8, 16};

  std::printf("matchd throughput, %zu ops/thread, %zu groups\n\n", ops,
              groups);
  std::printf("%-8s %-16s %-9s %-16s %-9s %-10s\n", "threads", "sync jobs/s",
              "speedup", "queued jobs/s", "speedup", "rejected");

  double sync_base = 0.0;
  double async_base = 0.0;
  std::vector<std::pair<Sample, Sample>> rows;
  for (const std::size_t n : counts) {
    const Sample sync = measure(n, ops, groups, /*async=*/false);
    const Sample async = measure(n, ops, groups, /*async=*/true);
    if (n == 1) {
      sync_base = sync.jobs_per_sec;
      async_base = async.jobs_per_sec;
    }
    std::printf("%-8zu %-16.0f %-9.2f %-16.0f %-9.2f %-10llu\n", n,
                sync.jobs_per_sec, sync.jobs_per_sec / sync_base,
                async.jobs_per_sec, async.jobs_per_sec / async_base,
                static_cast<unsigned long long>(async.rejected));
    rows.emplace_back(sync, async);
  }

  if (!csv.empty()) {
    util::CsvWriter out(csv);
    out.header({"threads", "sync_jobs_per_sec", "sync_speedup",
                "queued_jobs_per_sec", "queued_speedup", "queued_rejected"});
    for (const auto& [sync, async] : rows) {
      out.row({std::to_string(sync.threads),
               std::to_string(sync.jobs_per_sec),
               std::to_string(sync.jobs_per_sec / sync_base),
               std::to_string(async.jobs_per_sec),
               std::to_string(async.jobs_per_sec / async_base),
               std::to_string(async.rejected)});
    }
    std::printf("\nwrote %s\n", csv.c_str());
  }
  return 0;
}
