// Figure 8: ratio of utilization with estimation to utilization without,
// for clusters of 512 x 32 MiB plus 512 machines of X MiB, X = 1..32.
//
// Paper reference points: the gain appears only for X in roughly 16-28 MiB
// (below 16 the alpha = 2 ladder stalls at 16 -> rounds up to 32, so the
// small pool stays unreachable; at 32 the cluster is homogeneous), and in
// the gain band the improvement correlates almost perfectly (R² = 0.991)
// with the node count of the jobs for which estimation is effective.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "stats/regression.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/0);
  exp::print_banner("Figure 8: utilization ratio vs second-pool memory",
                    "Yom-Tov & Aridor 2006, Figure 8 (+ §3.2 node-count fit)");

  const trace::Workload workload = args.workload();
  const std::size_t pool = args.trace_jobs == 0 ? 512 : 64;

  std::vector<MiB> sizes;
  for (int mib = 1; mib <= 32; ++mib) sizes.push_back(mib);

  exp::RunSpec spec = args.run_spec();
  obs::Registry registry;
  const auto result = exp::cluster_sweep(workload, sizes, 1.0, spec, pool,
                                         args.runner_options(&registry));
  exp::report_sweep_errors("second-pool size", result.errors);
  const auto& sweep = result.points;
  exp::cluster_sweep_table(sweep).print();

  // The paper's §3.2 linear fit: benefiting node count vs utilization
  // ratio, over the gain band (16-28 MiB). Degenerate points (no baseline
  // utilization) carry no ratio and stay out of the fit and the best-point
  // scan — a 0.0 sentinel would anchor the fit and the argmax at garbage.
  std::vector<double> node_counts, ratios;
  for (const auto& p : sweep) {
    const auto ratio = p.utilization_ratio();
    if (p.second_pool_mib >= 16.0 && p.second_pool_mib <= 28.0 &&
        ratio.has_value()) {
      node_counts.push_back(
          static_cast<double>(p.with_estimation.benefiting_nodes));
      ratios.push_back(*ratio);
    }
  }
  const auto fit = stats::fit_linear(node_counts, ratios);
  if (fit.valid) {
    std::printf("\nnode-count vs gain fit over 16-28 MiB: R^2=%.3f   (paper: 0.991)\n",
                fit.r_squared);
  } else {
    std::printf("\nnode-count vs gain fit over 16-28 MiB: degenerate "
                "(%zu usable points) — no R^2 claim\n", fit.n);
  }

  double best_ratio = 0.0, best_mib = 0.0;
  bool any_ratio = false;
  for (const auto& p : sweep) {
    const auto ratio = p.utilization_ratio();
    if (ratio.has_value() && *ratio > best_ratio) {
      best_ratio = *ratio;
      best_mib = p.second_pool_mib;
      any_ratio = true;
    }
  }
  if (any_ratio) {
    std::printf("largest gain: %.2fx at %g MiB   (paper: gains only in 16-28 MiB)\n",
                best_ratio, best_mib);
  } else {
    std::printf("largest gain: undefined (no point produced a finite ratio)\n");
  }

  exp::write_cluster_sweep_csv(args.csv, sweep);
  exp::maybe_write_sweep_record(
      args, "fig8_cluster_sweep", result.stats, registry, [&] {
        exp::RunnerOptions serial;
        serial.jobs = 1;
        return exp::cluster_sweep(workload, sizes, 1.0, spec, pool, serial)
            .stats;
      });
  return 0;
}
