// Scenario-diversity sweep: run every workload-catalog scenario
// (SCENARIOS.md) through the multi-resource engine across an estimator
// grid, and gate the engine's dims=1 path against the scalar simulator.
//
// Flags (util::CliArgs; unknown options are an error):
//   --scenario=all|NAME   scenarios to run (default all synthetic models)
//   --estimators=a,b,c    estimator arms (default none,successive-
//                         approximation,quantile)
//   --dims=N              resource dimensions to pack (default 3)
//   --trace-jobs=N        jobs per generated scenario (default 2000)
//   --jobs=N              sweep workers (0 = hardware concurrency)
//   --seed=S --sim-seed=S workload / simulator seeds
//   --policy=NAME         scheduling policy (default fcfs)
//   --csv=PATH            CSV dump of the sweep rows
//   --metrics-out=PATH    schema-v1 BENCH_scenarios.json record
//   --swf=PATH            also replay an SWF trace through the
//                         stream-factory sweep (one stream per arm)
//   --gate-dims1          run ONLY the equivalence gate: for every
//                         synthetic scenario and estimator arm, the MR
//                         engine at dims=1 must reproduce sim::simulate()
//                         field for field (exact doubles); exit 1 on any
//                         mismatch
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "core/multi_resource.hpp"
#include "exp/experiment.hpp"
#include "exp/scenarios.hpp"
#include "obs/bench_record.hpp"
#include "obs/metrics.hpp"
#include "sched/factory.hpp"
#include "sim/mr_simulator.hpp"
#include "trace/job_stream.hpp"
#include "trace/scenario.hpp"
#include "util/cli.hpp"

namespace {

using namespace resmatch;

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : value) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += c;
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

/// Exact comparison of every SimulationResult field; prints the first
/// mismatch. Doubles compare with == on purpose: the gate's contract is
/// bitwise decision equivalence, not tolerance.
bool results_equal(const char* label, const sim::SimulationResult& a,
                   const sim::SimulationResult& b) {
  bool ok = true;
  auto check = [&](const char* field, double x, double y) {
    if (x == y || (std::isnan(x) && std::isnan(y))) return;
    std::fprintf(stderr, "GATE MISMATCH %s: %s scalar=%.17g mr=%.17g\n",
                 label, field, x, y);
    ok = false;
  };
  check("submitted", static_cast<double>(a.submitted),
        static_cast<double>(b.submitted));
  check("completed", static_cast<double>(a.completed),
        static_cast<double>(b.completed));
  check("intrinsic_failed", static_cast<double>(a.intrinsic_failed),
        static_cast<double>(b.intrinsic_failed));
  check("dropped_unschedulable", static_cast<double>(a.dropped_unschedulable),
        static_cast<double>(b.dropped_unschedulable));
  check("dropped_attempt_cap", static_cast<double>(a.dropped_attempt_cap),
        static_cast<double>(b.dropped_attempt_cap));
  check("attempts", static_cast<double>(a.attempts),
        static_cast<double>(b.attempts));
  check("resource_failures", static_cast<double>(a.resource_failures),
        static_cast<double>(b.resource_failures));
  check("lowered_starts", static_cast<double>(a.lowered_starts),
        static_cast<double>(b.lowered_starts));
  check("makespan", a.makespan, b.makespan);
  check("offered_load", a.offered_load, b.offered_load);
  check("utilization", a.utilization, b.utilization);
  check("wasted_fraction", a.wasted_fraction, b.wasted_fraction);
  check("mean_wait", a.mean_wait, b.mean_wait);
  check("mean_slowdown", a.mean_slowdown, b.mean_slowdown);
  check("mean_bounded_slowdown", a.mean_bounded_slowdown,
        b.mean_bounded_slowdown);
  check("p95_slowdown", a.p95_slowdown, b.p95_slowdown);
  check("throughput_per_hour", a.throughput_per_hour, b.throughput_per_hour);
  check("benefiting_jobs", static_cast<double>(a.benefiting_jobs),
        static_cast<double>(b.benefiting_jobs));
  check("benefiting_nodes", static_cast<double>(a.benefiting_nodes),
        static_cast<double>(b.benefiting_nodes));
  check("granted_mib_nodes", a.granted_mib_nodes, b.granted_mib_nodes);
  check("used_mib_nodes", a.used_mib_nodes, b.used_mib_nodes);
  if (a.pool_utilization.size() != b.pool_utilization.size()) {
    std::fprintf(stderr, "GATE MISMATCH %s: pool_utilization size\n", label);
    ok = false;
  } else {
    for (std::size_t i = 0; i < a.pool_utilization.size(); ++i) {
      check("pool_utilization.capacity", a.pool_utilization[i].capacity,
            b.pool_utilization[i].capacity);
      check("pool_utilization.busy_fraction",
            a.pool_utilization[i].busy_fraction,
            b.pool_utilization[i].busy_fraction);
    }
  }
  return ok;
}

/// The dims=1 A/B replay: scalar engine vs MR engine over the same base
/// workload (flat footprints via trace::scenario_from).
int run_gate(const std::vector<std::string>& scenarios,
             const std::vector<std::string>& estimators,
             const std::string& policy_name, std::uint64_t seed,
             std::uint64_t sim_seed, std::size_t job_count) {
  bool all_ok = true;
  const sim::ClusterSpec cluster = exp::scenario_cluster(1);
  for (const auto& scenario_name : scenarios) {
    const trace::ScenarioWorkload scenario =
        exp::make_scenario(scenario_name, seed, job_count);
    const trace::ScenarioWorkload flat = trace::scenario_from(scenario.base);
    for (const auto& estimator_name : estimators) {
      sim::SimulationConfig config;
      config.seed = sim_seed;
      if (core::requires_explicit_feedback(estimator_name)) {
        config.explicit_feedback = true;
      }

      auto scalar_est = core::make_estimator(estimator_name);
      auto scalar_policy = sched::make_policy(policy_name);
      const sim::SimulationResult scalar = sim::simulate(
          scenario.base, cluster, *scalar_est, *scalar_policy, config);

      core::VectorEstimatorConfig est_cfg;
      est_cfg.dims = 1;
      est_cfg.estimator = estimator_name;
      core::VectorEstimator vec_est(est_cfg);
      auto mr_policy = sched::make_policy(policy_name);
      sim::MrSimulationConfig mr_cfg;
      mr_cfg.base = config;
      mr_cfg.dims = 1;
      const sim::MrSimulationResult mr =
          sim::simulate_mr(flat, cluster, vec_est, *mr_policy, mr_cfg);

      const std::string label = scenario_name + "/" + estimator_name;
      if (results_equal(label.c_str(), scalar, mr.base)) {
        std::printf("gate OK   %-32s attempts=%zu kills=%zu\n", label.c_str(),
                    scalar.attempts, scalar.resource_failures);
      } else {
        all_ok = false;
      }
    }
  }
  std::printf(all_ok ? "dims=1 equivalence gate: PASS\n"
                     : "dims=1 equivalence gate: FAIL\n");
  return all_ok ? 0 : 1;
}

std::string underscored(std::string name) {
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs cli(argc, argv);
  const std::string scenario_arg = cli.get("scenario", std::string("all"));
  const std::vector<std::string> estimators = split_csv(cli.get(
      "estimators", std::string("none,successive-approximation,quantile")));
  const auto dims =
      static_cast<std::size_t>(cli.get("dims", static_cast<std::int64_t>(3)));
  const auto trace_jobs = static_cast<std::size_t>(
      cli.get("trace-jobs", static_cast<std::int64_t>(2000)));
  const auto jobs =
      static_cast<std::size_t>(cli.get("jobs", static_cast<std::int64_t>(0)));
  const auto seed = static_cast<std::uint64_t>(
      cli.get("seed", static_cast<std::int64_t>(42)));
  const auto sim_seed = static_cast<std::uint64_t>(
      cli.get("sim-seed", static_cast<std::int64_t>(7)));
  const std::string policy = cli.get("policy", std::string("fcfs"));
  const std::string csv = cli.get("csv", std::string{});
  const std::string metrics_out = cli.get("metrics-out", std::string{});
  const std::string swf = cli.get("swf", std::string{});
  const bool gate = cli.get("gate-dims1", false);
  if (!cli.unused().empty()) {
    for (const auto& key : cli.unused()) {
      std::fprintf(stderr, "error: unknown option --%s\n", key.c_str());
    }
    std::fprintf(stderr,
                 "known options: --scenario --estimators --dims --trace-jobs "
                 "--jobs --seed --sim-seed --policy --csv --metrics-out "
                 "--swf --gate-dims1\n");
    return 2;
  }

  std::vector<std::string> scenarios;
  if (scenario_arg == "all") {
    scenarios = exp::scenario_names();
  } else {
    scenarios = split_csv(scenario_arg);
  }

  if (gate) {
    return run_gate(scenarios, estimators, policy, seed, sim_seed, trace_jobs);
  }

  obs::Registry registry;
  exp::ScenarioRunConfig config;
  config.dims = dims;
  config.policy = policy;
  config.sim.seed = sim_seed;
  config.job_count = trace_jobs;
  config.trace_seed = seed;

  exp::RunnerOptions runner;
  runner.jobs = jobs;
  runner.metrics = &registry;

  const exp::ScenarioSweep sweep =
      exp::scenario_sweep(scenarios, estimators, config, runner);
  for (const auto& err : sweep.errors) {
    std::fprintf(stderr, "error: task %zu failed: %s\n", err.index,
                 err.message.c_str());
  }

  std::printf(
      "%-14s %-26s dims  kills(mem/cpu/gpu) midjob  kill-rate  util\n",
      "scenario", "estimator");
  for (const auto& row : sweep.rows) {
    std::printf("%-14s %-26s %4zu  %6zu/%4zu/%4zu %6zu  %9.4f  %.4f\n",
                row.scenario.c_str(), row.estimator.c_str(), row.dims,
                row.result.kills_by_dim[kDimMem],
                row.result.kills_by_dim[kDimCpu],
                row.result.kills_by_dim[kDimGpu], row.result.midjob_kills,
                row.kill_rate(), row.result.base.utilization);
  }
  if (!csv.empty()) exp::write_scenario_csv(csv, sweep);

  // SWF replay through the stream-factory sweep: each arm gets its own
  // file cursor, so parallel workers never interleave reads.
  std::size_t swf_rows = 0;
  std::size_t swf_failed = 0;
  if (!swf.empty()) {
    std::vector<exp::RunSpec> specs;
    for (const auto& estimator : estimators) {
      exp::RunSpec spec;
      spec.estimator = estimator;
      spec.policy = policy;
      spec.sim.seed = sim_seed;
      specs.push_back(spec);
    }
    const exp::StreamFactory factory = [&swf] {
      return std::unique_ptr<trace::JobStream>(
          std::make_unique<trace::SwfJobStream>(swf));
    };
    const auto swf_sweep =
        exp::run_specs(factory, exp::scenario_cluster(1), specs, runner);
    for (std::size_t i = 0; i < swf_sweep.results.size(); ++i) {
      if (!swf_sweep.results[i]) continue;
      ++swf_rows;
      std::printf("swf            %-26s       util %.4f  completed %zu\n",
                  specs[i].estimator.c_str(),
                  swf_sweep.results[i]->utilization,
                  swf_sweep.results[i]->completed);
    }
    swf_failed = swf_sweep.errors.size();
    for (const auto& err : swf_sweep.errors) {
      std::fprintf(stderr, "error: swf arm %zu failed: %s\n", err.index,
                   err.message.c_str());
    }
  }

  if (!metrics_out.empty()) {
    obs::BenchRecord record("scenarios");
    record.config("scenario", scenario_arg);
    record.config("dims", static_cast<std::int64_t>(dims));
    record.config("trace_jobs", static_cast<std::int64_t>(trace_jobs));
    record.config("jobs", static_cast<std::int64_t>(sweep.stats.jobs));
    record.config("seed", static_cast<std::int64_t>(seed));
    record.config("sim_seed", static_cast<std::int64_t>(sim_seed));
    record.config("policy", policy);
    record.summary("rows_total", static_cast<double>(sweep.rows.size()));
    record.summary("failed_runs", static_cast<double>(sweep.stats.failed));
    std::size_t midjob = 0;
    for (const auto& row : sweep.rows) midjob += row.result.midjob_kills;
    record.summary("midjob_kills_total", static_cast<double>(midjob));
    if (!swf.empty()) {
      record.summary("swf_rows", static_cast<double>(swf_rows));
    }
    for (const auto& scenario : scenarios) {
      std::uint64_t attempts = 0, kills = 0;
      for (const auto& row : sweep.rows) {
        if (row.scenario != scenario) continue;
        attempts += row.result.base.attempts;
        kills += row.result.base.resource_failures;
      }
      record.summary("kill_rate_" + underscored(scenario),
                     attempts > 0 ? static_cast<double>(kills) /
                                        static_cast<double>(attempts)
                                  : 0.0);
    }
    record.metrics(registry.snapshot());
    if (!record.write(metrics_out)) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   metrics_out.c_str());
      return 1;
    }
  }
  return (sweep.errors.empty() && swf_failed == 0) ? 0 : 1;
}
