// Ablation: offline training (warm start) vs learning on the job.
//
// Paper §2.2: the similarity machinery is customized "offline ... using
// traces of explicit feedback from previous job submissions, as part of
// the training (customization) phase of the estimator". This bench splits
// the trace chronologically, pre-trains each estimator on the first 30%,
// and compares live performance on the remaining 70% against a cold
// start.
#include <cstdio>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/20000);
  exp::print_banner("Ablation: warm start from historical traces",
                    "Yom-Tov & Aridor 2006, §2.2 training phase");

  const exp::BenchSetup setup = args.heterogeneous_setup();
  const trace::Workload& workload = setup.workload;
  const sim::ClusterSpec& cluster = setup.cluster;

  util::ConsoleTable table({"estimator", "start", "util", "slowdown",
                            "lowered%", "res-fail%"});
  std::unique_ptr<util::CsvWriter> csv;
  if (!args.csv.empty()) {
    csv = std::make_unique<util::CsvWriter>(args.csv);
    csv->header({"estimator", "warm", "util", "slowdown", "lowered_frac",
                 "resource_fail_frac"});
  }

  // One warm-start comparison per estimator; the four chronological
  // cold/warm pairs fan across the sweep engine.
  const std::vector<const char*> estimators = {
      "successive-approximation", "bracketing", "last-instance",
      "regression-ridge"};
  const auto sweep = exp::run_tasks(
      estimators.size(),
      [&](std::size_t i) {
        exp::RunSpec spec = args.run_spec();
        spec.estimator = estimators[i];
        return exp::run_warmstart(workload, cluster, spec, 0.3);
      },
      args.runner_options());
  exp::report_sweep_errors("warm-start arm", sweep.errors);

  for (std::size_t i = 0; i < estimators.size(); ++i) {
    if (!sweep.results[i].has_value()) continue;
    const char* estimator = estimators[i];
    const auto& result = *sweep.results[i];
    struct Arm {
      const char* label;
      const sim::SimulationResult* r;
    };
    for (const Arm arm : {Arm{"cold", &result.cold}, Arm{"warm", &result.warm}}) {
      table.add_row({estimator, arm.label,
                     util::format("%.3f", arm.r->utilization),
                     util::format("%.2f", arm.r->mean_slowdown),
                     util::format("%.1f", 100.0 * arm.r->lowered_fraction()),
                     util::format("%.3f",
                                  100.0 * arm.r->resource_failure_fraction())});
      if (csv) {
        csv->row({std::string(estimator),
                  std::string(arm.label == std::string("warm") ? "1" : "0"),
                  util::format_number(arm.r->utilization, 6),
                  util::format_number(arm.r->mean_slowdown, 6),
                  util::format_number(arm.r->lowered_fraction(), 6),
                  util::format_number(arm.r->resource_failure_fraction(), 6)});
      }
    }
  }
  table.print();
  std::printf(
      "\nReading: warm estimators lower requests from the first submission\n"
      "of every known group, so the lowered%% and utilization columns should\n"
      "meet or beat the cold rows — the value of the paper's offline\n"
      "customization phase.\n");
  return 0;
}
