// Ablation: best-fit vs worst-fit machine selection.
//
// The paper's motivating scenario (§1.1) hinges on which machines a
// matched job occupies: J1 placed on the big-memory machine blocks J2.
// The allocator's fit policy decides exactly that. Best fit preserves
// large machines for jobs that need them; worst fit burns them first.
// This ablation quantifies the choice with and without estimation.
#include <cstdio>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_jobs=*/20000);
  exp::print_banner("Ablation: best-fit vs worst-fit allocation",
                    "Yom-Tov & Aridor 2006, §1.1 scenario");

  const exp::BenchSetup setup = args.heterogeneous_setup();
  const trace::Workload& workload = setup.workload;
  const sim::ClusterSpec& cluster = setup.cluster;

  util::ConsoleTable table({"allocation", "estimator", "util", "slowdown",
                            "res-fail%"});
  std::unique_ptr<util::CsvWriter> csv;
  if (!args.csv.empty()) {
    csv = std::make_unique<util::CsvWriter>(args.csv);
    csv->header({"allocation", "estimator", "util", "slowdown",
                 "resource_fail_frac"});
  }

  struct Arm {
    sim::AllocationPolicy policy;
    const char* label;
  };
  for (const Arm arm : {Arm{sim::AllocationPolicy::kBestFit, "best-fit"},
                        Arm{sim::AllocationPolicy::kWorstFit, "worst-fit"}}) {
    for (const char* estimator : {"none", "successive-approximation"}) {
      exp::RunSpec spec = args.run_spec();
      spec.estimator = estimator;
      spec.sim.allocation = arm.policy;
      const auto result = exp::run_once(workload, cluster, spec);
      table.add_row({arm.label, estimator,
                     util::format("%.3f", result.utilization),
                     util::format("%.2f", result.mean_slowdown),
                     util::format("%.3f",
                                  100.0 * result.resource_failure_fraction())});
      if (csv) {
        csv->row({std::string(arm.label), std::string(estimator),
                  util::format_number(result.utilization, 6),
                  util::format_number(result.mean_slowdown, 6),
                  util::format_number(result.resource_failure_fraction(), 6)});
      }
    }
  }
  table.print();
  std::printf(
      "\nReading: under estimation, best fit should dominate — estimated\n"
      "jobs fill small machines, keeping 32 MiB nodes free for jobs whose\n"
      "groups have not yet converged.\n");
  return 0;
}
