// Ablation: best-fit vs worst-fit machine selection.
//
// The paper's motivating scenario (§1.1) hinges on which machines a
// matched job occupies: J1 placed on the big-memory machine blocks J2.
// The allocator's fit policy decides exactly that. Best fit preserves
// large machines for jobs that need them; worst fit burns them first.
// This ablation quantifies the choice with and without estimation.
#include <cstdio>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/20000);
  exp::print_banner("Ablation: best-fit vs worst-fit allocation",
                    "Yom-Tov & Aridor 2006, §1.1 scenario");

  const exp::BenchSetup setup = args.heterogeneous_setup();
  const trace::Workload& workload = setup.workload;
  const sim::ClusterSpec& cluster = setup.cluster;

  util::ConsoleTable table({"allocation", "estimator", "util", "slowdown",
                            "res-fail%"});
  std::unique_ptr<util::CsvWriter> csv;
  if (!args.csv.empty()) {
    csv = std::make_unique<util::CsvWriter>(args.csv);
    csv->header({"allocation", "estimator", "util", "slowdown",
                 "resource_fail_frac"});
  }

  struct Arm {
    sim::AllocationPolicy policy;
    const char* label;
    const char* estimator;
  };
  std::vector<Arm> arms;
  std::vector<exp::RunSpec> specs;
  for (const auto& [policy, label] :
       {std::pair{sim::AllocationPolicy::kBestFit, "best-fit"},
        std::pair{sim::AllocationPolicy::kWorstFit, "worst-fit"}}) {
    for (const char* estimator : {"none", "successive-approximation"}) {
      exp::RunSpec spec = args.run_spec();
      spec.estimator = estimator;
      spec.sim.allocation = policy;
      specs.push_back(std::move(spec));
      arms.push_back({policy, label, estimator});
    }
  }
  const auto sweep =
      exp::run_specs(workload, cluster, specs, args.runner_options());
  exp::report_sweep_errors("allocation arm", sweep.errors);
  for (std::size_t i = 0; i < arms.size(); ++i) {
    if (!sweep.results[i].has_value()) continue;
    const auto& result = *sweep.results[i];
    table.add_row({arms[i].label, arms[i].estimator,
                   util::format("%.3f", result.utilization),
                   util::format("%.2f", result.mean_slowdown),
                   util::format("%.3f",
                                100.0 * result.resource_failure_fraction())});
    if (csv) {
      csv->row({std::string(arms[i].label), std::string(arms[i].estimator),
                util::format_number(result.utilization, 6),
                util::format_number(result.mean_slowdown, 6),
                util::format_number(result.resource_failure_fraction(), 6)});
    }
  }
  table.print();
  std::printf(
      "\nReading: under estimation, best fit should dominate — estimated\n"
      "jobs fill small machines, keeping 32 MiB nodes free for jobs whose\n"
      "groups have not yet converged.\n");
  return 0;
}
