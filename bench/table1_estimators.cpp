// Table 1 extended: the estimator shoot-out.
//
// The paper's taxonomy of resource-estimation algorithms — {implicit,
// explicit} feedback x {with, without} similarity groups — realized as
// estimators and compared head-to-head on the same workload and cluster,
// plus the two learned arms this repo adds on top of the taxonomy:
//
//                      | implicit                  | explicit
//   similarity groups  | successive approximation  | last-instance
//   no similarity      | reinforcement learning    | regression modeling
//
//   quantile       online pinball-loss regression at tau (explicit, none)
//   ensemble       successive approximation per group while cold, model
//                  hand-over per group once coverage clears the threshold
//   ensemble-cold  the ensemble with an unreachable warm-up bar — must be
//                  decision-identical to successive approximation run on
//                  the same (explicit) feedback, or the cold path leaks
//                  model influence
//
// Every arm runs on TWO CM5-style fixtures, because the two learned
// regression arms win in opposite variance regimes:
//
//   default   the calibrated CM5 trace: most variance is ACROSS groups
//             (the heavy-tailed over-provisioning ratio of Figure 1).
//             Group identity is everything here, and ridge's burned-key
//             memoization exploits it: predict low, eat one kill per hot
//             group, pass the request through afterwards.
//   noisy     measured requests, noisy usage: the heavy ratio tail is off
//             (requests bound usage within ~2x, as for the paper's
//             full-node population) but WITHIN-group usage varies by
//             several x run to run. Group memory is nearly worthless and
//             a mean predictor under-covers chronically; regressing a
//             high quantile of usage directly is the right loss, so this
//             is where the quantile arm must beat ridge on kills at
//             equal-or-better overprovisioning.
//
// Headline metrics per arm: the overprovisioning factor (granted/used
// memory over successful runs, the paper's Figure 1 measure; 1.0 is a
// perfect oracle), the kill rate (resource-failure fraction of attempts),
// and the learned arms' prequential coverage. With --metrics-out the
// whole comparison lands in a schema-v1 BENCH_estimators.json: per-arm
// summary keys carry a `_noisy` suffix for the second fixture, and the
// acceptance comparisons are
//   quantile_vs_ridge_kill_delta    kill(ridge) - kill(quantile) on the
//                                   noisy fixture (>= 0: quantile kills
//                                   fewer jobs)
//   quantile_vs_ridge_opf_delta     opf(ridge) - opf(quantile) on the
//                                   noisy fixture (>= 0: quantile is no
//                                   more wasteful)
//   quantile_vs_ridge_kill_delta_default / _opf_delta_default
//                                   the same comparison on the default
//                                   fixture (ridge's home regime)
//   ensemble_cold_matches_sa        1.0 when ensemble-cold reproduced
//                                   successive approximation exactly on
//                                   BOTH fixtures
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "obs/bench_record.hpp"
#include "trace/cm5_model.hpp"
#include "util/csv.hpp"

namespace {

using namespace resmatch;

/// The "full-node defaults, noisy usage" CM5 variant. Nearly everyone
/// requests the whole node (the CM5's lazy default, per the paper), so
/// the request value carries almost no information and memorizing it is
/// worthless; actual usage sits below the request by the OS-overhead
/// floor (full_node_min_ratio) but varies several-fold run to run within
/// a group. The heavy across-group over-provisioning tail is off. This
/// is the regime a high-quantile usage model is FOR: the learnable
/// signal is the usage distribution itself, not group identity.
trace::Workload noisy_fixture(std::uint64_t seed, std::size_t jobs) {
  trace::Cm5ModelConfig cfg;
  cfg.seed = seed;
  cfg.job_count = jobs;
  cfg.group_count = std::max<std::size_t>(1, jobs / 12);
  cfg.user_count = std::max<std::size_t>(4, jobs / 600);
  cfg.partition_sizes = {4, 8, 16, 32, 64};
  cfg.nominal_machines = 128;
  cfg.request_mib_values = {32, 24, 16};
  cfg.request_mib_weights = {0.85, 0.09, 0.06};
  cfg.frac_ratio_ge2 = 0.0;          // requests are honest ~2x bounds
  cfg.identical_usage_fraction = 0.0;  // no deterministic repeats
  cfg.loose_group_fraction = 1.0;      // every group's usage is noisy
  cfg.loose_range_mean = 2.5;
  return trace::sort_by_submit(trace::generate_cm5(cfg));
}

struct Arm {
  const char* label;      ///< table row / summary key prefix
  const char* estimator;  ///< factory name
  const char* feedback;
  const char* similarity;
  /// Option tweaks on top of the defaults (null = none).
  void (*tune)(core::EstimatorOptions&);
  /// Force explicit feedback even if the estimator does not demand it
  /// (pairs the SA arm with ensemble-cold for the equality check).
  bool force_explicit = false;
};

struct FixtureResult {
  std::map<std::string, sim::SimulationResult> results;
  std::map<std::string, double> coverages;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/20000);
  exp::print_banner("Table 1: estimator shoot-out",
                    "Yom-Tov & Aridor 2006, Table 1 and §4, plus learned arms");

  // Four capacity classes instead of the paper's two. With only {24, 32}
  // rungs every grant a CM5-style job can receive already covers its
  // usage, so all arms tie at zero kills; the finer ladder gives lowering
  // real resolution and estimation mistakes show up as resource failures
  // instead of being absorbed by a 24-MiB floor.
  const std::size_t pool = args.trace_jobs == 0 ? 256 : 32;
  const sim::ClusterSpec cluster{
      {32.0, pool}, {24.0, pool}, {16.0, pool}, {8.0, pool}};
  const std::size_t machines = 4 * pool;
  const std::size_t jobs = args.trace_jobs == 0 ? 20000 : args.trace_jobs;

  const auto prep = [&](trace::Workload workload) {
    std::uint32_t widest = 0;
    for (const auto& job : workload.jobs) widest = std::max(widest, job.nodes);
    if (widest > machines) {
      workload = trace::drop_wide_jobs(std::move(workload),
                                       static_cast<std::uint32_t>(machines));
    }
    return trace::sort_by_submit(
        trace::scale_to_load(std::move(workload), machines, 1.0));
  };

  struct Fixture {
    const char* name;
    const char* suffix;  ///< appended to summary keys
    trace::Workload workload;
  };
  Fixture fixtures[] = {
      {"default (calibrated CM5: across-group variance)", "",
       prep(args.workload())},
      {"noisy (measured requests, within-group variance)", "_noisy",
       prep(noisy_fixture(args.seed + 1, jobs))},
  };

  const Arm arms[] = {
      {"none", "none", "-", "-", nullptr},
      {"successive-approximation", "successive-approximation", "explicit",
       "yes", nullptr, /*force_explicit=*/true},
      {"bracketing", "bracketing", "implicit", "yes", nullptr},
      {"last-instance", "last-instance", "explicit", "yes", nullptr},
      {"reinforcement-learning", "reinforcement-learning", "implicit", "no",
       nullptr},
      {"regression-ridge", "regression-ridge", "explicit", "no", nullptr},
      {"regression-knn", "regression-knn", "explicit", "no", nullptr},
      {"quantile", "quantile", "explicit", "no", nullptr},
      {"ensemble", "ensemble", "explicit", "yes", nullptr},
      {"ensemble-cold", "ensemble", "explicit", "yes",
       [](core::EstimatorOptions& o) {
         // An unreachable warm-up bar pins every group to its
         // successive-approximation fallback for the entire run.
         o.min_observations = std::size_t{1} << 30;
       }},
  };

  std::vector<FixtureResult> outcomes;
  for (const Fixture& fixture : fixtures) {
    std::printf("\n-- fixture: %s --\n", fixture.name);
    util::ConsoleTable table({"estimator", "feedback", "similarity", "util",
                              "slowdown", "opf", "kill%", "coverage",
                              "completed"});
    FixtureResult out;
    for (const Arm& arm : arms) {
      exp::RunSpec spec = args.run_spec();
      spec.estimator = arm.estimator;
      if (arm.tune) arm.tune(spec.options);
      if (arm.force_explicit) spec.sim.explicit_feedback = true;
      // Caller-owned estimator so the learned arms can be asked for their
      // post-run coverage.
      auto estimator = core::make_estimator(spec.estimator, spec.options);
      const auto result =
          exp::run_once(fixture.workload, cluster, spec, *estimator);
      const auto stats = estimator->model_stats();
      const double coverage = stats ? stats->coverage : std::nan("");
      table.add_row({arm.label, arm.feedback, arm.similarity,
                     util::format("%.3f", result.utilization),
                     util::format("%.2f", result.mean_slowdown),
                     util::format("%.3f", result.overprovision_factor()),
                     util::format("%.3f",
                                  100.0 * result.resource_failure_fraction()),
                     stats ? util::format("%.3f", coverage) : std::string("-"),
                     util::format("%zu/%zu", result.completed,
                                  result.submitted)});
      out.results.emplace(arm.label, result);
      if (stats) out.coverages.emplace(arm.label, coverage);
    }
    table.print();
    outcomes.push_back(std::move(out));
  }

  // Exact equality, not tolerance: the cold ensemble runs the identical
  // SaGroupState transitions, so any drift means the model path leaked
  // into a decision it should never have touched.
  bool cold_matches_sa = true;
  for (const FixtureResult& out : outcomes) {
    const sim::SimulationResult& sa = out.results.at("successive-approximation");
    const sim::SimulationResult& cold = out.results.at("ensemble-cold");
    cold_matches_sa = cold_matches_sa && cold.completed == sa.completed &&
                      cold.attempts == sa.attempts &&
                      cold.resource_failures == sa.resource_failures &&
                      cold.lowered_starts == sa.lowered_starts &&
                      cold.granted_mib_nodes == sa.granted_mib_nodes &&
                      cold.utilization == sa.utilization;
  }
  const auto kill_delta = [&](const FixtureResult& out) {
    return out.results.at("regression-ridge").resource_failure_fraction() -
           out.results.at("quantile").resource_failure_fraction();
  };
  const auto opf_delta = [&](const FixtureResult& out) {
    return out.results.at("regression-ridge").overprovision_factor() -
           out.results.at("quantile").overprovision_factor();
  };
  std::printf(
      "\nReading: every estimator should beat 'none' on utilization. The\n"
      "default fixture is ridge's regime (variance lives across groups and\n"
      "its burned-key memoization exploits group identity); the noisy\n"
      "fixture is the quantile arm's regime (variance lives within groups,\n"
      "so the right model is a high quantile of usage, not a memoized\n"
      "mean). On the noisy fixture quantile should kill fewer jobs than\n"
      "ridge (kill_delta=%.4f, >= 0 is a win) at equal-or-better\n"
      "overprovisioning (opf_delta=%.3f, >= 0 is a win; default fixture\n"
      "for contrast: kill_delta=%.4f, opf_delta=%.3f). ensemble-cold must\n"
      "reproduce successive approximation exactly on both fixtures (%s).\n",
      kill_delta(outcomes[1]), opf_delta(outcomes[1]), kill_delta(outcomes[0]),
      opf_delta(outcomes[0]), cold_matches_sa ? "it does" : "IT DOES NOT");

  if (!args.csv.empty()) {
    util::CsvWriter csv(args.csv);
    csv.header({"fixture", "estimator", "util", "slowdown", "opf",
                "lowered_frac", "resource_fail_frac", "coverage"});
    for (std::size_t f = 0; f < outcomes.size(); ++f) {
      for (const Arm& arm : arms) {
        const sim::SimulationResult& r = outcomes[f].results.at(arm.label);
        const auto cov = outcomes[f].coverages.find(arm.label);
        csv.row({std::string(f == 0 ? "default" : "noisy"),
                 std::string(arm.label),
                 util::format_number(r.utilization, 6),
                 util::format_number(r.mean_slowdown, 6),
                 util::format_number(r.overprovision_factor(), 6),
                 util::format_number(r.lowered_fraction(), 6),
                 util::format_number(r.resource_failure_fraction(), 6),
                 cov == outcomes[f].coverages.end()
                     ? std::string("")
                     : util::format_number(cov->second, 6)});
      }
    }
  }

  if (!args.metrics_out.empty()) {
    obs::BenchRecord record("table1_estimators");
    record.config("trace_jobs", static_cast<std::int64_t>(args.trace_jobs));
    record.config("seed", static_cast<std::int64_t>(args.seed));
    record.config("sim_seed", static_cast<std::int64_t>(args.sim_seed));
    for (std::size_t f = 0; f < outcomes.size(); ++f) {
      const std::string suffix(fixtures[f].suffix);
      for (const Arm& arm : arms) {
        const sim::SimulationResult& r = outcomes[f].results.at(arm.label);
        const std::string prefix(arm.label);
        record.summary("opf_" + prefix + suffix, r.overprovision_factor());
        record.summary("kill_" + prefix + suffix,
                       r.resource_failure_fraction());
        record.summary("util_" + prefix + suffix, r.utilization);
      }
      for (const auto& [label, coverage] : outcomes[f].coverages) {
        if (std::isfinite(coverage)) {
          record.summary("coverage_" + label + suffix, coverage);
        }
      }
    }
    record.summary("quantile_vs_ridge_kill_delta", kill_delta(outcomes[1]));
    record.summary("quantile_vs_ridge_opf_delta", opf_delta(outcomes[1]));
    record.summary("quantile_vs_ridge_kill_delta_default",
                   kill_delta(outcomes[0]));
    record.summary("quantile_vs_ridge_opf_delta_default",
                   opf_delta(outcomes[0]));
    record.summary("ensemble_cold_matches_sa", cold_matches_sa ? 1.0 : 0.0);
    obs::Registry registry;
    record.metrics(registry.snapshot());
    if (!record.write(args.metrics_out)) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   args.metrics_out.c_str());
    }
  }
  return cold_matches_sa ? 0 : 1;
}
