// Table 1: the paper's taxonomy of resource-estimation algorithms —
// {implicit, explicit} feedback x {with, without} similarity groups —
// realized as four estimators and compared head-to-head on the same
// workload and cluster:
//
//                      | implicit                  | explicit
//   similarity groups  | successive approximation  | last-instance
//   no similarity      | reinforcement learning    | regression modeling
//
// The paper proposes the taxonomy without measuring the off-diagonal
// entries; this bench fills in the comparison.
#include <cstdio>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/20000);
  exp::print_banner("Table 1: estimator taxonomy comparison",
                    "Yom-Tov & Aridor 2006, Table 1 and §4");

  const exp::BenchSetup setup = args.heterogeneous_setup();
  const trace::Workload& workload = setup.workload;
  const sim::ClusterSpec& cluster = setup.cluster;

  util::ConsoleTable table({"estimator", "feedback", "similarity", "util",
                            "slowdown", "lowered%", "res-fail%", "completed"});
  struct RowMeta {
    const char* name;
    const char* feedback;
    const char* similarity;
  };
  const RowMeta rows[] = {
      {"none", "-", "-"},
      {"successive-approximation", "implicit", "yes"},
      {"bracketing", "implicit", "yes"},
      {"last-instance", "explicit", "yes"},
      {"reinforcement-learning", "implicit", "no"},
      {"regression-ridge", "explicit", "no"},
      {"regression-knn", "explicit", "no"},
  };

  std::vector<std::vector<double>> csv_rows;
  for (const auto& row : rows) {
    exp::RunSpec spec = args.run_spec();
    spec.estimator = row.name;
    const auto result = exp::run_once(workload, cluster, spec);
    table.add_row({row.name, row.feedback, row.similarity,
                   util::format("%.3f", result.utilization),
                   util::format("%.2f", result.mean_slowdown),
                   util::format("%.1f", 100.0 * result.lowered_fraction()),
                   util::format("%.3f",
                                100.0 * result.resource_failure_fraction()),
                   util::format("%zu/%zu", result.completed,
                                result.submitted)});
    csv_rows.push_back({result.utilization, result.mean_slowdown,
                        result.lowered_fraction(),
                        result.resource_failure_fraction()});
  }
  table.print();
  std::printf(
      "\nReading: every estimator should beat 'none' on utilization at this\n"
      "load; explicit feedback rows should lower more requests with fewer\n"
      "failures than their implicit counterparts (paper §2.1).\n");

  if (!args.csv.empty()) {
    util::CsvWriter csv(args.csv);
    csv.header({"estimator", "util", "slowdown", "lowered_frac",
                "resource_fail_frac"});
    for (std::size_t i = 0; i < csv_rows.size(); ++i) {
      csv.row({std::string(rows[i].name),
               util::format_number(csv_rows[i][0], 6),
               util::format_number(csv_rows[i][1], 6),
               util::format_number(csv_rows[i][2], 6),
               util::format_number(csv_rows[i][3], 6)});
    }
  }
  return 0;
}
