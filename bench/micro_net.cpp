// micro_net: wire-protocol round-trip throughput and latency over UDS.
//
// Stands up an in-process mini-cluster — 1, 2, then 4 matchd shards, each
// behind a net::Server on a Unix-domain socket — and drives a serial
// submit+feedback replay through a net::Router, measuring requests/sec
// and client-observed round-trip latency (p50/p99 from an obs::Histogram,
// the same instrument the server exports). Serial drive means the numbers
// are per-connection protocol cost, not a saturation benchmark — the
// relevant regression signal for the replay-equivalence harness and any
// single-threaded scheduler front end.
//
//   ./build/bench/micro_net [--requests=N] [--metrics-out=BENCH_net.json]
//
// --metrics-out writes a schema-v1 BENCH record (validated in CI by
// scripts/validate_bench_json.py) with per-shard-count summary keys:
// rps_1shard, p50_us_1shard, p99_us_1shard, rps_2shard, ...
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/capacity_ladder.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "obs/bench_record.hpp"
#include "obs/metrics.hpp"
#include "sim/cluster.hpp"
#include "svc/matchd.hpp"
#include "trace/cm5_model.hpp"
#include "trace/transforms.hpp"
#include "util/cli.hpp"

namespace {

using namespace resmatch;

struct ShardCountResult {
  std::size_t shards = 0;
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t requests = 0;
};

ShardCountResult run_with_shards(const trace::Workload& workload,
                                 const core::CapacityLadder& ladder,
                                 std::size_t shards_n,
                                 const std::string& dir) {
  std::vector<std::unique_ptr<svc::Matchd>> matchds;
  std::vector<std::unique_ptr<net::Server>> servers;
  net::RouterConfig router_config;
  for (std::size_t s = 0; s < shards_n; ++s) {
    auto matchd = std::make_unique<svc::Matchd>();
    matchd->set_ladder(ladder);
    net::ServerConfig config;
    config.uds_path = dir + "/bench" + std::to_string(shards_n) + "_" +
                      std::to_string(s) + ".sock";
    auto server = std::make_unique<net::Server>(*matchd, config);
    if (!server->start()) {
      std::fprintf(stderr, "FAIL: cannot start shard %zu\n", s);
      std::exit(1);
    }
    net::ShardEndpoint ep;
    ep.uds_path = config.uds_path;
    router_config.shards.push_back(ep);
    matchds.push_back(std::move(matchd));
    servers.push_back(std::move(server));
  }
  router_config.ladder = ladder;
  net::Router router(router_config);
  if (!router.connect().has_value()) {
    std::fprintf(stderr, "FAIL: router connect failed\n");
    std::exit(1);
  }

  // Client-side round-trip latency, microseconds to ~2 s.
  obs::Histogram latency(obs::HistogramSpec{1e-6, 2.0, 32});
  std::uint64_t requests = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& job : workload.jobs) {
    auto r0 = std::chrono::steady_clock::now();
    const svc::MatchDecision decision = router.submit(job);
    latency.record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - r0)
            .count());
    core::Feedback fb;
    fb.granted_mib = decision.granted_mib;
    fb.success = job.used_mem_mib <= decision.granted_mib;
    fb.used_mib = job.used_mem_mib;
    fb.resource_failure = !fb.success;
    r0 = std::chrono::steady_clock::now();
    router.feedback(job, fb);
    latency.record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - r0)
            .count());
    requests += 2;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (auto& server : servers) server->stop();

  const obs::HistogramSnapshot snap = latency.snapshot();
  ShardCountResult result;
  result.shards = shards_n;
  result.requests = requests;
  result.wall_seconds = wall;
  result.rps = wall > 0.0 ? static_cast<double>(requests) / wall : 0.0;
  result.p50_us = snap.percentile(50.0) * 1e6;
  result.p99_us = snap.percentile(99.0) * 1e6;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs cli(argc, argv);
  const auto requests_n = static_cast<std::size_t>(
      cli.get("requests", static_cast<std::int64_t>(4000)));
  const std::string metrics_out = cli.get("metrics-out", std::string{});
  if (!cli.unused().empty()) {
    for (const auto& key : cli.unused()) {
      std::fprintf(stderr, "error: unknown option --%s\n", key.c_str());
    }
    std::fprintf(stderr, "known options: --requests --metrics-out\n");
    return 2;
  }

  char tmpl[] = "/tmp/resmatch_micro_net_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "FAIL: mkdtemp failed\n");
    return 1;
  }
  const std::string dir = tmpl;

  trace::Workload workload =
      trace::generate_cm5_small(/*seed=*/1, requests_n / 2);
  const sim::ClusterSpec cluster = sim::cm5_heterogeneous(24.0, 64);
  workload = trace::drop_wide_jobs(std::move(workload), 128);
  workload = trace::sort_by_submit(
      trace::scale_to_load(std::move(workload), 128, 1.0));
  const core::CapacityLadder ladder = sim::Cluster(cluster).ladder();

  std::printf("%-8s %-12s %-12s %-12s %-10s\n", "shards", "requests/s",
              "p50 (us)", "p99 (us)", "requests");
  std::vector<ShardCountResult> results;
  for (const std::size_t shards_n : {1u, 2u, 4u}) {
    const ShardCountResult r =
        run_with_shards(workload, ladder, shards_n, dir);
    std::printf("%-8zu %-12.0f %-12.1f %-12.1f %-10llu\n", r.shards, r.rps,
                r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.requests));
    results.push_back(r);
  }
  std::filesystem::remove_all(dir);

  if (!metrics_out.empty()) {
    obs::Registry registry;  // summaries only; no long-lived instruments
    obs::BenchRecord record("micro_net");
    record.config("requests", static_cast<std::int64_t>(requests_n));
    for (const ShardCountResult& r : results) {
      const std::string tag = std::to_string(r.shards) + "shard";
      record.summary("rps_" + tag, r.rps);
      record.summary("p50_us_" + tag, r.p50_us);
      record.summary("p99_us_" + tag, r.p99_us);
      record.summary("wall_seconds_" + tag, r.wall_seconds);
    }
    record.metrics(registry.snapshot());
    if (!record.write(metrics_out)) {
      std::fprintf(stderr, "FAIL: could not write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return 0;
}
