// micro_faults: price of durability and cost of the fault paths.
//
// Three series over a WAL-backed svc::Matchd driven by a closed
// submit+feedback loop:
//
//   durability   ops/sec at fsync cadences 1 / 64 / 4096 against the
//                WAL-off baseline — what each durability level costs
//   chaos        ops/sec with the deterministic injector armed at
//                increasing rates (consecutive-failure cap below the
//                retry budget, so every fault is absorbed by retries
//                and the service never degrades)
//   recovery     time for a fresh service to rebuild state from the
//                crashed run's snapshot + WAL (records/sec replayed)
//
//   ./build/bench/micro_faults [--jobs=N] [--groups=G] [--wal-dir=DIR]
//                              [--fault-seed=S] [--metrics-out=PATH]
//
// --jobs is the per-series operation count (default 100000). --wal-dir
// defaults to a directory under the system temp path; every run uses a
// fresh subdirectory.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/capacity_ladder.hpp"
#include "obs/bench_record.hpp"
#include "svc/matchd.hpp"
#include "util/cli.hpp"
#include "util/fault.hpp"

namespace {

using namespace resmatch;

trace::JobRecord make_job(std::uint64_t n, std::size_t groups) {
  trace::JobRecord job;
  job.id = n;
  job.user = static_cast<UserId>(n % groups);
  job.app = static_cast<AppId>((n / groups) % 17);
  job.requested_mem_mib = 32.0;
  job.used_mem_mib = 4.0 + static_cast<double>(n % 7);
  job.nodes = 1;
  job.runtime = 60.0;
  return job;
}

void drive(svc::Matchd& service, std::size_t ops, std::size_t groups) {
  for (std::size_t i = 0; i < ops; ++i) {
    const trace::JobRecord job = make_job(i, groups);
    const svc::MatchDecision d = service.submit(job);
    core::Feedback fb;
    fb.success = d.granted_mib + 1e-9 >= job.used_mem_mib;
    fb.granted_mib = d.granted_mib;
    fb.used_mib = job.used_mem_mib;
    service.feedback(job, fb);
  }
}

core::CapacityLadder bench_ladder() {
  return core::CapacityLadder({4.0, 8.0, 16.0, 24.0, 32.0, 64.0, 128.0});
}

struct RunResult {
  double ops_per_sec = 0.0;
  svc::MatchdStats stats;
};

RunResult timed_run(const svc::MatchdConfig& config, std::size_t ops,
                    std::size_t groups) {
  svc::Matchd service(config);
  service.set_ladder(bench_ladder());
  const auto start = std::chrono::steady_clock::now();
  drive(service, ops, groups);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  RunResult r;
  r.ops_per_sec = static_cast<double>(ops) / elapsed;
  r.stats = service.stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs cli(argc, argv);
  const auto ops = static_cast<std::size_t>(
      cli.get("jobs", static_cast<std::int64_t>(100000)));
  const auto groups = static_cast<std::size_t>(
      cli.get("groups", static_cast<std::int64_t>(1024)));
  const auto fault_seed = static_cast<std::uint64_t>(
      cli.get("fault-seed", static_cast<std::int64_t>(42)));
  std::string wal_base = cli.get("wal-dir", std::string{});
  const std::string metrics_out = cli.get("metrics-out", std::string{});
  if (wal_base.empty()) {
    wal_base = (std::filesystem::temp_directory_path() /
                "resmatch_micro_faults")
                   .string();
  }
  std::filesystem::remove_all(wal_base);
  std::size_t next_dir = 0;
  const auto fresh_dir = [&] {
    return wal_base + "/run-" + std::to_string(next_dir++);
  };

  svc::MatchdConfig base;
  base.store.shards = 64;

  // --- durability: what each fsync cadence costs ---------------------------
  std::printf("durability (%zu ops, %zu groups)\n", ops, groups);
  std::printf("  %-22s %-14s %-10s\n", "mode", "ops/sec", "vs no-WAL");
  const RunResult no_wal = timed_run(base, ops, groups);
  std::printf("  %-22s %-14.0f %-10s\n", "no WAL", no_wal.ops_per_sec, "1.00");
  struct DurabilityRow {
    std::size_t fsync_every;
    double ops_per_sec;
  };
  std::vector<DurabilityRow> durability_rows;
  for (const std::size_t fsync_every : {std::size_t{1}, std::size_t{64},
                                        std::size_t{4096}}) {
    svc::MatchdConfig config = base;
    config.durability.wal_dir = fresh_dir();
    config.durability.wal_fsync_every = fsync_every;
    const RunResult r = timed_run(config, ops, groups);
    std::printf("  fsync_every=%-10zu %-14.0f %-10.2f\n", fsync_every,
                r.ops_per_sec, r.ops_per_sec / no_wal.ops_per_sec);
    durability_rows.push_back({fsync_every, r.ops_per_sec});
  }

  // --- chaos: retry-path cost under injected faults ------------------------
  std::printf("\nchaos (fault seed %llu, consecutive cap 3)\n",
              static_cast<unsigned long long>(fault_seed));
  std::printf("  %-12s %-14s %-10s %-10s %-10s\n", "rate", "ops/sec",
              "retries", "giveups", "degraded");
  struct ChaosRow {
    double rate;
    double ops_per_sec;
    std::uint64_t retries;
  };
  std::vector<ChaosRow> chaos_rows;
  for (const double rate : {0.01, 0.05, 0.20}) {
    util::FaultInjector injector(fault_seed);
    // Cap below the retry budget (6 attempts): every injected failure is
    // absorbed by the retry loop, so this measures retries, not give-ups.
    injector.arm(util::FaultSite::kWalAppend,
                 util::FaultSpec{rate, /*max_consecutive=*/3});
    svc::MatchdConfig config = base;
    config.durability.wal_dir = fresh_dir();
    config.durability.faults = &injector;
    const RunResult r = timed_run(config, ops, groups);
    std::printf("  %-12.2f %-14.0f %-10llu %-10llu %-10s\n", rate,
                r.ops_per_sec,
                static_cast<unsigned long long>(r.stats.wal_retries),
                static_cast<unsigned long long>(r.stats.wal_giveups),
                r.stats.degraded ? "yes" : "no");
    chaos_rows.push_back({rate, r.ops_per_sec, r.stats.wal_retries});
  }

  // --- recovery: snapshot + WAL replay speed -------------------------------
  const std::string recovery_dir = fresh_dir();
  std::uint64_t logged = 0;
  {
    svc::MatchdConfig config = base;
    config.durability.wal_dir = recovery_dir;
    // Compact once at ~75% of the run's appends (2 per job) so recovery
    // exercises both snapshot load AND replay of the post-snapshot tail.
    config.durability.compact_every = ops + ops / 2;
    svc::Matchd service(config);
    service.set_ladder(bench_ladder());
    drive(service, ops, groups);
    logged = service.stats().wal.appends;
    service.simulate_crash(/*leave_torn_tail=*/false);
  }
  double recover_seconds = 0.0;
  svc::RecoveryStats recovery;
  {
    svc::MatchdConfig config = base;
    config.durability.wal_dir = recovery_dir;
    svc::Matchd service(config);
    const auto start = std::chrono::steady_clock::now();
    auto result = service.recover();
    recover_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (!result) {
      std::fprintf(stderr, "FAIL: recovery: %s\n", result.error().c_str());
      return 1;
    }
    recovery = result.value();
  }
  std::printf("\nrecovery\n");
  std::printf("  logged records:    %llu\n",
              static_cast<unsigned long long>(logged));
  std::printf("  snapshot rows:     %zu\n", recovery.snapshot_rows);
  std::printf("  replayed records:  %llu (%llu files, %llu torn)\n",
              static_cast<unsigned long long>(recovery.wal_records),
              static_cast<unsigned long long>(recovery.wal_files),
              static_cast<unsigned long long>(recovery.torn_files));
  std::printf("  recover time:      %.3f ms (%.0f records/sec)\n",
              recover_seconds * 1e3,
              recover_seconds > 0.0
                  ? static_cast<double>(recovery.wal_records) /
                        recover_seconds
                  : 0.0);

  if (!metrics_out.empty()) {
    obs::BenchRecord record("micro_faults");
    record.config("jobs", static_cast<std::int64_t>(ops));
    record.config("groups", static_cast<std::int64_t>(groups));
    record.config("fault_seed", static_cast<std::int64_t>(fault_seed));
    record.summary("ops_per_sec_no_wal", no_wal.ops_per_sec);
    for (const auto& row : durability_rows) {
      record.summary("ops_per_sec_fsync_" + std::to_string(row.fsync_every),
                     row.ops_per_sec);
    }
    for (const auto& row : chaos_rows) {
      record.summary("ops_per_sec_fault_" + std::to_string(
                         static_cast<int>(row.rate * 100)),
                     row.ops_per_sec);
    }
    record.summary("recover_seconds", recover_seconds);
    record.summary("recovered_records",
                   static_cast<double>(recovery.wal_records));
    if (!record.write(metrics_out)) {
      std::fprintf(stderr, "FAIL: could not write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", metrics_out.c_str());
  }
  std::filesystem::remove_all(wal_base);
  return 0;
}
