// Ablation: scheduling-policy independence (paper §1.3 claims it, §3.1
// leaves backfilling to future work: "we expect that the results ... with
// more aggressive scheduling policies like backfilling will be correlated
// with those for FCFS"). This bench runs the Figure 5 experiment under
// FCFS, SJF, and EASY backfilling.
#include <cstdio>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_jobs=*/20000);
  exp::print_banner("Ablation: estimation gain under different policies",
                    "Yom-Tov & Aridor 2006, §1.3 / §3.1 future work");

  const exp::BenchSetup setup = args.heterogeneous_setup();
  const trace::Workload& workload = setup.workload;
  const sim::ClusterSpec& cluster = setup.cluster;

  util::ConsoleTable table({"policy", "util(none)", "util(est)", "util ratio",
                            "slowdown(none)", "slowdown(est)",
                            "slowdown ratio"});
  std::unique_ptr<util::CsvWriter> csv;
  if (!args.csv.empty()) {
    csv = std::make_unique<util::CsvWriter>(args.csv);
    csv->header({"policy", "util_none", "util_est", "util_ratio",
                 "slowdown_none", "slowdown_est", "slowdown_ratio"});
  }

  for (const auto& policy : sched::policy_names()) {
    exp::RunSpec with_est = args.run_spec();
    with_est.policy = policy;
    exp::RunSpec without = args.run_spec();
    without.policy = policy;
    without.estimator = "none";
    const auto est = exp::run_once(workload, cluster, with_est);
    const auto none = exp::run_once(workload, cluster, without);
    const double util_ratio =
        none.utilization > 0 ? est.utilization / none.utilization : 0.0;
    const double slow_ratio =
        est.mean_slowdown > 0 ? none.mean_slowdown / est.mean_slowdown : 0.0;
    table.add_row({policy, util::format("%.3f", none.utilization),
                   util::format("%.3f", est.utilization),
                   util::format("%.3f", util_ratio),
                   util::format("%.2f", none.mean_slowdown),
                   util::format("%.2f", est.mean_slowdown),
                   util::format("%.2f", slow_ratio)});
    if (csv) {
      csv->row({policy, util::format_number(none.utilization, 6),
                util::format_number(est.utilization, 6),
                util::format_number(util_ratio, 6),
                util::format_number(none.mean_slowdown, 6),
                util::format_number(est.mean_slowdown, 6),
                util::format_number(slow_ratio, 6)});
    }
  }
  table.print();
  std::printf("\nReading: the utilization gain should appear under every\n"
              "policy, supporting the paper's policy-independence claim.\n");
  return 0;
}
