// Ablation: scheduling-policy independence (paper §1.3 claims it, §3.1
// leaves backfilling to future work: "we expect that the results ... with
// more aggressive scheduling policies like backfilling will be correlated
// with those for FCFS"). This bench runs the Figure 5 experiment under
// FCFS, SJF, and EASY backfilling.
#include <cstdio>
#include <limits>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/20000);
  exp::print_banner("Ablation: estimation gain under different policies",
                    "Yom-Tov & Aridor 2006, §1.3 / §3.1 future work");

  const exp::BenchSetup setup = args.heterogeneous_setup();
  const trace::Workload& workload = setup.workload;
  const sim::ClusterSpec& cluster = setup.cluster;

  util::ConsoleTable table({"policy", "util(none)", "util(est)", "util ratio",
                            "slowdown(none)", "slowdown(est)",
                            "slowdown ratio"});
  std::unique_ptr<util::CsvWriter> csv;
  if (!args.csv.empty()) {
    csv = std::make_unique<util::CsvWriter>(args.csv);
    csv->header({"policy", "util_none", "util_est", "util_ratio",
                 "slowdown_none", "slowdown_est", "slowdown_ratio"});
  }

  // Two specs per policy (with estimation at even slots, without at odd),
  // all fanned across the sweep engine in one call.
  const auto policies = sched::policy_names();
  std::vector<exp::RunSpec> specs;
  for (const auto& policy : policies) {
    exp::RunSpec with_est = args.run_spec();
    with_est.policy = policy;
    exp::RunSpec without = args.run_spec();
    without.policy = policy;
    without.estimator = "none";
    specs.push_back(std::move(with_est));
    specs.push_back(std::move(without));
  }
  const auto sweep =
      exp::run_specs(workload, cluster, specs, args.runner_options());
  exp::report_sweep_errors("policy arm", sweep.errors);

  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& policy = policies[i];
    if (!sweep.results[2 * i].has_value() ||
        !sweep.results[2 * i + 1].has_value()) {
      continue;
    }
    const auto& est = *sweep.results[2 * i];
    const auto& none = *sweep.results[2 * i + 1];
    // NaN, not a 0.0 sentinel, for degenerate denominators (see LoadPoint).
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double util_ratio =
        none.utilization > 0 ? est.utilization / none.utilization : nan;
    const double slow_ratio =
        est.mean_slowdown > 0 ? none.mean_slowdown / est.mean_slowdown : nan;
    table.add_row({policy, util::format("%.3f", none.utilization),
                   util::format("%.3f", est.utilization),
                   util::format("%.3f", util_ratio),
                   util::format("%.2f", none.mean_slowdown),
                   util::format("%.2f", est.mean_slowdown),
                   util::format("%.2f", slow_ratio)});
    if (csv) {
      csv->row({policy, util::format_number(none.utilization, 6),
                util::format_number(est.utilization, 6),
                util::format_number(util_ratio, 6),
                util::format_number(none.mean_slowdown, 6),
                util::format_number(est.mean_slowdown, 6),
                util::format_number(slow_ratio, 6)});
    }
  }
  table.print();
  std::printf("\nReading: the utilization gain should appear under every\n"
              "policy, supporting the paper's policy-independence claim.\n");
  return 0;
}
