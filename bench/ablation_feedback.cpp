// Ablation: implicit vs explicit feedback, clean trace vs one with
// intrinsic (non-resource) job failures — the false-positive hazard the
// paper flags for implicit feedback in §2.1.
//
// Expectations: explicit feedback lowers more requests (it knows exact
// usage) and is immune to false positives; implicit feedback's gain
// degrades as intrinsic failures freeze similarity groups early.
#include <cstdio>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "trace/cm5_model.hpp"
#include "util/csv.hpp"

namespace {

resmatch::trace::Workload make_trace(std::uint64_t seed, std::size_t jobs,
                                     double failure_fraction) {
  using namespace resmatch;
  trace::Cm5ModelConfig cfg;
  cfg.seed = seed;
  if (jobs != 0) {
    // Reduced scale: shrink the population AND the partition sizes so the
    // trace matches the reduced 128-machine cluster (as generate_cm5_small
    // does).
    cfg.job_count = jobs;
    cfg.group_count = std::max<std::size_t>(1, jobs / 12);
    cfg.user_count = std::max<std::size_t>(4, jobs / 600);
    cfg.partition_sizes = {4, 8, 16, 32, 64};
    cfg.nominal_machines = 128;
  }
  cfg.intrinsic_failure_fraction = failure_fraction;
  return trace::sort_by_submit(trace::generate_cm5(cfg));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/20000);
  exp::print_banner("Ablation: feedback type and false positives",
                    "Yom-Tov & Aridor 2006, §2.1");

  const std::size_t pool = args.trace_jobs == 0 ? 512 : 64;
  const std::size_t machines = 2 * pool;
  const sim::ClusterSpec cluster = sim::cm5_heterogeneous(24.0, pool);

  util::ConsoleTable table({"estimator", "feedback", "fault rate", "util",
                            "lowered%", "res-fail%", "intrinsic"});
  std::unique_ptr<util::CsvWriter> csv;
  if (!args.csv.empty()) {
    csv = std::make_unique<util::CsvWriter>(args.csv);
    csv->header({"estimator", "fault_rate", "util", "lowered_frac",
                 "resource_fail_frac"});
  }

  // Two fault-rate traces × three estimator arms: each arm keeps a
  // reference to its trace, and all six runs fan across the sweep engine
  // via run_tasks (run_specs assumes one shared workload).
  const std::vector<double> fault_rates = {0.0, 0.05};
  std::vector<trace::Workload> workloads;
  for (const double fault_rate : fault_rates) {
    trace::Workload workload = make_trace(args.seed, args.trace_jobs,
                                          fault_rate);
    workloads.push_back(trace::sort_by_submit(
        trace::scale_to_load(std::move(workload), machines, 1.0)));
  }
  struct Arm {
    const char* estimator;
    const char* feedback;
    std::size_t trace_index;
    double fault_rate;
  };
  std::vector<Arm> arms;
  for (std::size_t t = 0; t < fault_rates.size(); ++t) {
    arms.push_back({"successive-approximation", "implicit", t, fault_rates[t]});
    arms.push_back({"last-instance", "explicit", t, fault_rates[t]});
    arms.push_back({"none", "-", t, fault_rates[t]});
  }
  const auto sweep = exp::run_tasks(
      arms.size(),
      [&](std::size_t i) {
        exp::RunSpec spec = args.run_spec();
        spec.estimator = arms[i].estimator;
        return exp::run_once(workloads[arms[i].trace_index], cluster, spec);
      },
      args.runner_options());
  exp::report_sweep_errors("feedback arm", sweep.errors);

  for (std::size_t i = 0; i < arms.size(); ++i) {
    if (!sweep.results[i].has_value()) continue;
    const auto& result = *sweep.results[i];
    const Arm& arm = arms[i];
    table.add_row(
        {arm.estimator, arm.feedback,
         util::format("%.0f%%", 100 * arm.fault_rate),
         util::format("%.3f", result.utilization),
         util::format("%.1f", 100.0 * result.lowered_fraction()),
         util::format("%.3f", 100.0 * result.resource_failure_fraction()),
         util::format("%zu", result.intrinsic_failed)});
    if (csv) {
      csv->row({std::string(arm.estimator),
                util::format_number(arm.fault_rate, 4),
                util::format_number(result.utilization, 6),
                util::format_number(result.lowered_fraction(), 6),
                util::format_number(result.resource_failure_fraction(), 6)});
    }
  }
  table.print();
  return 0;
}
