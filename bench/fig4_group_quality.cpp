// Figure 4: possible gain from resource estimation versus group
// similarity, one point per similarity group with >= 10 jobs.
//
// x-axis: similarity range (max used / min used within the group);
// y-axis: potential gain (requested / max used).
// Paper reference points: most groups sit at the low end of the range
// axis, and groups with gain above one order of magnitude are also very
// similar — the qualitative green light for estimation.
#include <algorithm>
#include <cstdio>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "trace/analysis.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/0);
  exp::print_banner("Figure 4: potential gain vs group similarity",
                    "Yom-Tov & Aridor 2006, Figure 4");

  const trace::Workload workload = args.workload();
  const auto groups = trace::profile_groups(workload);
  const auto scatter = trace::group_quality_scatter(groups, 10);

  // Summarize the scatter as a 2D count table (ranges x gain decades),
  // which is what the eye takes from the paper's plot.
  const double range_edges[] = {1.0, 1.25, 1.5, 2.0, 4.0, 1e9};
  const double gain_edges[] = {1.0, 2.0, 10.0, 1e9};
  const char* range_names[] = {"[1,1.25)", "[1.25,1.5)", "[1.5,2)", "[2,4)",
                               ">=4"};
  const char* gain_names[] = {"gain [1,2)", "gain [2,10)", "gain >=10"};
  std::size_t counts[5][3] = {};
  for (const auto& p : scatter) {
    std::size_t r = 0, g = 0;
    while (r < 4 && p.similarity_range >= range_edges[r + 1]) ++r;
    while (g < 2 && p.potential_gain >= gain_edges[g + 1]) ++g;
    ++counts[r][g];
  }
  util::ConsoleTable table({"similarity range", gain_names[0], gain_names[1],
                            gain_names[2]});
  for (std::size_t r = 0; r < 5; ++r) {
    table.add_row({range_names[r], util::format("%zu", counts[r][0]),
                   util::format("%zu", counts[r][1]),
                   util::format("%zu", counts[r][2])});
  }
  table.print();

  std::size_t tight = 0, high_gain_similar = 0;
  for (const auto& p : scatter) {
    if (p.similarity_range <= 1.5) ++tight;
    if (p.potential_gain >= 10.0 && p.similarity_range < 2.0) {
      ++high_gain_similar;
    }
  }
  std::printf("\ngroups plotted (>= 10 jobs): %zu\n", scatter.size());
  std::printf("at similarity range <= 1.5:  %.1f%%   (paper: 'a large fraction')\n",
              scatter.empty() ? 0.0 : 100.0 * tight / scatter.size());
  std::printf("gain >= 10x and range < 2:   %zu groups   (paper: such groups exist)\n",
              high_gain_similar);

  if (!args.csv.empty()) {
    util::CsvWriter csv(args.csv);
    csv.header({"similarity_range", "potential_gain", "group_size"});
    for (const auto& p : scatter) {
      csv.row(std::vector<double>{p.similarity_range, p.potential_gain,
                                  static_cast<double>(p.size)});
    }
  }
  return 0;
}
