// Figure 5: cluster utilization vs offered load, with and without resource
// estimation, on the heterogeneous cluster of 512 x 32 MiB + 512 x 24 MiB.
//
// Paper reference points: utilization at the saturation point improves by
// ~58% with estimation (successive approximation, alpha = 2, beta = 0,
// implicit feedback, FCFS). Also prints the §3.2 conservativeness stats
// (<= 0.01% of executions fail from under-estimation; 15-40% of jobs run
// with lowered requests).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "exp/report.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/0);
  exp::print_banner(
      "Figure 5: utilization vs load, with/without estimation",
      "Yom-Tov & Aridor 2006, Figure 5 (+ §3.2 conservativeness)");

  // load_sweep rescales the workload per point; build the fixture unscaled.
  const exp::BenchSetup setup = args.heterogeneous_setup(24.0, /*load=*/0.0);
  const trace::Workload& workload = setup.workload;
  const sim::ClusterSpec& cluster = setup.cluster;

  // paper defaults: successive-approximation, fcfs
  exp::RunSpec spec = args.run_spec();
  const std::vector<double> loads = {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4};
  obs::Registry registry;
  const auto result =
      exp::load_sweep(workload, cluster, loads, spec,
                      args.runner_options(&registry));
  exp::report_sweep_errors("load point", result.errors);
  const auto& sweep = result.points;
  if (sweep.empty()) {
    std::fprintf(stderr, "error: every sweep point failed\n");
    return 1;
  }

  exp::load_sweep_table(sweep).print();

  const double sat_est = exp::saturation_utilization(sweep, true);
  const double sat_none = exp::saturation_utilization(sweep, false);
  const auto knee_est = exp::find_saturation_knee(sweep, true);
  const auto knee_none = exp::find_saturation_knee(sweep, false);
  std::printf("\nsaturation utilization with estimation:    %.3f (knee at load %s)\n",
              sat_est,
              knee_est.found ? util::format("%.2f", knee_est.load).c_str()
                             : ">max swept");
  std::printf("saturation utilization without estimation: %.3f (knee at load %s)\n",
              sat_none,
              knee_none.found ? util::format("%.2f", knee_none.load).c_str()
                              : ">max swept");
  std::printf("improvement at saturation:                 %+.1f%%   (paper: +58%%)\n",
              100.0 * (sat_est / sat_none - 1.0));

  // The mechanism behind the gap: per-pool occupancy at the highest load.
  const auto& est_pools = sweep.back().with_estimation.pool_utilization;
  const auto& none_pools = sweep.back().without_estimation.pool_utilization;
  std::printf("\nper-pool busy fraction at load %.1f:\n", sweep.back().load);
  for (std::size_t i = 0; i < est_pools.size() && i < none_pools.size();
       ++i) {
    std::printf("  %4.0f MiB pool: %.3f with estimation, %.3f without\n",
                est_pools[i].capacity, est_pools[i].busy_fraction,
                none_pools[i].busy_fraction);
  }
  std::printf(
      "(the paper's story: without estimation the small pool idles while\n"
      " full-node requests queue for the 32 MiB machines)\n");

  // §3.2 conservativeness, reported at the highest simulated load.
  const auto& last = sweep.back().with_estimation;
  std::printf("\nexecutions failed by under-estimation: %.4f%%   (paper: <= 0.01%%)\n",
              100.0 * last.resource_failure_fraction());
  std::printf("jobs run with lowered requests:        %.1f%%   (paper: 15-40%%)\n",
              100.0 * last.lowered_fraction());

  exp::write_load_sweep_csv(args.csv, sweep);
  exp::maybe_write_sweep_record(
      args, "fig5_utilization", result.stats, registry, [&] {
        exp::RunnerOptions serial;
        serial.jobs = 1;
        return exp::load_sweep(workload, cluster, loads, spec, serial).stats;
      });
  return 0;
}
