// Figure 7: estimated memory for a single similarity group across
// estimation cycles.
//
// Paper reference points: requested memory 32 MiB, actual usage slightly
// above 5 MiB, alpha = 2, beta = 0: the estimate halves each cycle
// (32 -> 16 -> 8 -> 4), the 4 MiB attempt fails, and the group settles at
// 8 MiB — a four-fold reduction in held memory.
#include <cstdio>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "core/successive_approximation.hpp"
#include "exp/report.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  util::CliArgs cli(argc, argv);
  const double requested = cli.get("requested", 32.0);
  const double used = cli.get("used", 5.2);
  const double alpha = cli.get("alpha", 2.0);
  const double beta = cli.get("beta", 0.0);
  const auto cycles = static_cast<std::size_t>(
      cli.get("cycles", static_cast<std::int64_t>(10)));
  const std::string csv_path = cli.get("csv", std::string{});

  exp::print_banner("Figure 7: per-group estimate convergence",
                    "Yom-Tov & Aridor 2006, Figure 7");
  std::printf("requested=%.1f MiB, actual usage=%.1f MiB, alpha=%g, beta=%g\n\n",
              requested, used, alpha, beta);

  core::SuccessiveApproxConfig cfg;
  cfg.alpha = alpha;
  cfg.beta = beta;
  cfg.record_trajectories = true;
  core::SuccessiveApproximationEstimator estimator(cfg);
  // Power-of-two ladder, as on a cluster offering every halving step.
  estimator.set_ladder(core::CapacityLadder({1, 2, 4, 8, 16, 32}));

  trace::JobRecord job;
  job.id = 1;
  job.user = 1;
  job.app = 1;
  job.requested_mem_mib = requested;
  job.used_mem_mib = used;
  job.nodes = 32;
  job.runtime = 100;

  util::ConsoleTable table({"cycle", "granted MiB", "outcome"});
  for (std::size_t cycle = 1; cycle <= cycles; ++cycle) {
    const MiB grant = estimator.estimate(job, {});
    const bool success = grant + 1e-9 >= job.used_mem_mib;
    core::Feedback fb;
    fb.success = success;
    fb.granted_mib = grant;
    estimator.feedback(job, fb);
    table.add_row({util::format("%zu", cycle), util::format("%g", grant),
                   success ? "completed" : "failed (insufficient memory)"});
  }
  table.print();

  const auto trajectory = estimator.trajectory(job);
  std::printf("\nfinal estimate: %g MiB   (paper: settles at 8 MiB, a %gx saving)\n",
              trajectory.back(), requested / trajectory.back());

  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path);
    csv.header({"cycle", "granted_mib"});
    for (std::size_t i = 0; i < trajectory.size(); ++i) {
      csv.row(std::vector<double>{static_cast<double>(i + 1), trajectory[i]});
    }
  }
  return 0;
}
