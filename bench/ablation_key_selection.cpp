// Ablation: similarity-key selection (paper §2.2's offline trial-and-error
// phase, run systematically over all candidate keys).
//
// For each subset of {user, app, requested memory, nodes, runtime decade}
// this bench reports the paper's own quality measurements — how many jobs
// large groups cover (Figure 3's concern), how tight within-group usage is
// (Figure 4's x-axis), and the achievable gain (Figure 4's y-axis) — plus
// the end-to-end utilization when the successive-approximation estimator
// actually runs with that key.
#include <cstdio>

#include "util/strings.hpp"
#include "bench/bench_common.hpp"
#include "core/key_search.hpp"
#include "core/successive_approximation.hpp"
#include "exp/report.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/20000);
  exp::print_banner("Ablation: similarity-key selection",
                    "Yom-Tov & Aridor 2006, §2.2");

  const exp::BenchSetup setup = args.heterogeneous_setup();
  const trace::Workload& workload = setup.workload;
  const sim::ClusterSpec& cluster = setup.cluster;

  const auto masks = core::enumerate_key_masks(
      {core::KeyAttribute::kUser, core::KeyAttribute::kApp,
       core::KeyAttribute::kRequestedMemory, core::KeyAttribute::kNodes});
  const auto ranked = core::search_keys(workload, masks);

  util::ConsoleTable table({"key", "groups", "coverage", "tightness",
                            "mean log2 gain", "score", "util (sim)"});
  std::unique_ptr<util::CsvWriter> csv;
  if (!args.csv.empty()) {
    csv = std::make_unique<util::CsvWriter>(args.csv);
    csv->header({"key", "groups", "coverage", "tightness", "mean_log2_gain",
                 "score", "util"});
  }

  // Simulate only the top candidates plus the paper's key (simulating all
  // 15 would be slow without adding information). The chosen subset fans
  // across the sweep engine; each task builds its own estimator/policy.
  const core::KeyMask paper_key =
      static_cast<core::KeyMask>(core::KeyAttribute::kUser) |
      static_cast<core::KeyMask>(core::KeyAttribute::kApp) |
      static_cast<core::KeyMask>(core::KeyAttribute::kRequestedMemory);
  std::vector<std::size_t> simulated_ranks;  // indices into `ranked`
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    if (simulated_ranks.size() < 5 || ranked[r].mask == paper_key) {
      simulated_ranks.push_back(r);
    }
  }
  const auto sims = exp::run_tasks(
      simulated_ranks.size(),
      [&](std::size_t i) {
        core::SuccessiveApproximationEstimator estimator(
            {}, [mask = ranked[simulated_ranks[i]].mask](
                    const trace::JobRecord& job) {
              return core::key_hash(mask, job);
            });
        auto policy = sched::make_policy("fcfs");
        return sim::simulate(workload, cluster, estimator, *policy,
                             args.sim_config())
            .utilization;
      },
      args.runner_options());
  exp::report_sweep_errors("key-selection sim", sims.errors);

  for (std::size_t r = 0; r < ranked.size(); ++r) {
    const auto& quality = ranked[r];
    double util_sim = -1.0;
    for (std::size_t i = 0; i < simulated_ranks.size(); ++i) {
      if (simulated_ranks[i] == r && sims.results[i].has_value()) {
        util_sim = *sims.results[i];
      }
    }
    const std::string key_name =
        core::describe_key(quality.mask) +
        (quality.mask == paper_key ? " (paper)" : "");
    table.add_row({key_name, util::format("%zu", quality.group_count),
                   util::format("%.3f", quality.coverage),
                   util::format("%.3f", quality.tightness),
                   util::format("%.2f", quality.mean_log2_gain),
                   util::format("%.3f", quality.score),
                   util_sim < 0 ? "-" : util::format("%.3f", util_sim)});
    if (csv) {
      csv->row({core::describe_key(quality.mask),
                util::format("%zu", quality.group_count),
                util::format_number(quality.coverage, 6),
                util::format_number(quality.tightness, 6),
                util::format_number(quality.mean_log2_gain, 6),
                util::format_number(quality.score, 6),
                util::format_number(util_sim, 6)});
    }
  }
  table.print();
  std::printf(
      "\nReading: the offline score should track the simulated utilization;\n"
      "the paper's (user+app+req_mem) key should rank near the top.\n");
  return 0;
}
