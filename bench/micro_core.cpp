// Micro-benchmarks (google-benchmark) for the hot paths: estimator
// estimate/feedback cycles, cluster allocation, ClassAd evaluation, event
// queue churn, and synthetic trace generation throughput.
#include <benchmark/benchmark.h>

#include "core/factory.hpp"
#include "match/classad.hpp"
#include "sim/cluster.hpp"
#include "sim/event_queue.hpp"
#include "trace/cm5_model.hpp"
#include "util/rng.hpp"

namespace {

using namespace resmatch;

trace::JobRecord bench_job(std::uint64_t i) {
  trace::JobRecord j;
  j.id = i;
  j.user = static_cast<UserId>(i % 200);
  j.app = static_cast<AppId>(i % 17);
  j.requested_mem_mib = 32.0;
  j.used_mem_mib = 5.0;
  j.nodes = 32;
  j.runtime = 100;
  return j;
}

void BM_SuccessiveApproxCycle(benchmark::State& state) {
  auto est = core::make_estimator("successive-approximation");
  est->set_ladder(core::CapacityLadder({1, 2, 4, 8, 16, 32}));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto job = bench_job(i++ % 1000);
    const MiB grant = est->estimate(job, {});
    core::Feedback fb;
    fb.success = grant >= job.used_mem_mib;
    fb.granted_mib = grant;
    est->feedback(job, fb);
    benchmark::DoNotOptimize(grant);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SuccessiveApproxCycle);

void BM_RlEstimatorCycle(benchmark::State& state) {
  auto est = core::make_estimator("reinforcement-learning");
  est->set_ladder(core::CapacityLadder({1, 2, 4, 8, 16, 32}));
  core::SystemState sys;
  sys.busy_fraction = 0.5;
  sys.queue_length = 8;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto job = bench_job(i++);
    const MiB grant = est->estimate(job, sys);
    core::Feedback fb;
    fb.success = grant >= job.used_mem_mib;
    fb.granted_mib = grant;
    est->feedback(job, fb);
    benchmark::DoNotOptimize(grant);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RlEstimatorCycle);

void BM_ClusterAllocateRelease(benchmark::State& state) {
  sim::Cluster cluster(sim::cm5_heterogeneous(24.0));
  for (auto _ : state) {
    auto alloc = cluster.allocate(32, 24.0);
    benchmark::DoNotOptimize(alloc);
    if (alloc) cluster.release(*alloc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClusterAllocateRelease);

void BM_ClassAdMatch(benchmark::State& state) {
  match::ClassAd job, machine;
  job.set("req_memory", 16.0);
  job.set_expr("requirements", "other.memory >= my.req_memory");
  job.set_expr("rank", "other.memory - my.req_memory");
  machine.set("memory", 32.0);
  machine.set_expr("requirements", "other.req_memory <= 64");
  for (auto _ : state) {
    const auto result = match::match_ads(job, machine);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassAdMatch);

void BM_EventQueueChurn(benchmark::State& state) {
  sim::EventQueue<std::size_t> queue;
  util::Rng rng(1);
  for (std::size_t i = 0; i < 1024; ++i) queue.push(rng.uniform(), i);
  for (auto _ : state) {
    const auto event = queue.pop();
    queue.push(event.time + rng.uniform(), event.payload);
    benchmark::DoNotOptimize(event.payload);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueChurn);

void BM_TraceGeneration(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto workload = trace::generate_cm5_small(7, jobs);
    benchmark::DoNotOptimize(workload.jobs.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_TraceGeneration)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
