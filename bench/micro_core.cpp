// Micro-benchmarks (google-benchmark) for the hot paths: estimator
// estimate/feedback cycles, cluster allocation, ClassAd evaluation, event
// queue churn, and synthetic trace generation throughput — plus an
// end-to-end simulator benchmark (events/sec, schedule-pass p95) that A/Bs
// the optimized engine against the pre-optimization reference loop.
//
// Extra flags (in addition to the google-benchmark ones):
//   --sim-only          run only the end-to-end simulator benchmark
//   --sim-jobs=N        trace size for the simulator benchmark (def. 3000)
//   --baseline-loop     measure ONLY the reference engine (A/B anchor)
//   --metrics-out=PATH  write a schema-v1 BENCH_sim.json record
//   --scale             run ONLY the cluster-scale engine comparison:
//                       heap vs calendar engines, materialized vs streamed
//                       traces, sharded integration — each arm in a forked
//                       child so peak RSS is per-arm, with a hard internal
//                       byte-equivalence gate across all arms
//   --scale-jobs=N      trace size for --scale (default 200000)
//   --scale-machines=N  cluster size for --scale (default 100000)
#include <benchmark/benchmark.h>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "match/classad.hpp"
#include "obs/bench_record.hpp"
#include "obs/metrics.hpp"
#include "sched/factory.hpp"
#include "sim/cluster.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/timeseries.hpp"
#include "trace/cm5_model.hpp"
#include "trace/job_stream.hpp"
#include "trace/transforms.hpp"
#include "util/rng.hpp"

namespace {

using namespace resmatch;

trace::JobRecord bench_job(std::uint64_t i) {
  trace::JobRecord j;
  j.id = i;
  j.user = static_cast<UserId>(i % 200);
  j.app = static_cast<AppId>(i % 17);
  j.requested_mem_mib = 32.0;
  j.used_mem_mib = 5.0;
  j.nodes = 32;
  j.runtime = 100;
  return j;
}

void BM_SuccessiveApproxCycle(benchmark::State& state) {
  auto est = core::make_estimator("successive-approximation");
  est->set_ladder(core::CapacityLadder({1, 2, 4, 8, 16, 32}));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto job = bench_job(i++ % 1000);
    const MiB grant = est->estimate(job, {});
    core::Feedback fb;
    fb.success = grant >= job.used_mem_mib;
    fb.granted_mib = grant;
    est->feedback(job, fb);
    benchmark::DoNotOptimize(grant);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SuccessiveApproxCycle);

void BM_RlEstimatorCycle(benchmark::State& state) {
  auto est = core::make_estimator("reinforcement-learning");
  est->set_ladder(core::CapacityLadder({1, 2, 4, 8, 16, 32}));
  core::SystemState sys;
  sys.busy_fraction = 0.5;
  sys.queue_length = 8;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto job = bench_job(i++);
    const MiB grant = est->estimate(job, sys);
    core::Feedback fb;
    fb.success = grant >= job.used_mem_mib;
    fb.granted_mib = grant;
    est->feedback(job, fb);
    benchmark::DoNotOptimize(grant);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RlEstimatorCycle);

void BM_ClusterAllocateRelease(benchmark::State& state) {
  sim::Cluster cluster(sim::cm5_heterogeneous(24.0));
  for (auto _ : state) {
    auto alloc = cluster.allocate(32, 24.0);
    benchmark::DoNotOptimize(alloc);
    if (alloc) cluster.release(*alloc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClusterAllocateRelease);

void BM_ClassAdMatch(benchmark::State& state) {
  match::ClassAd job, machine;
  job.set("req_memory", 16.0);
  job.set_expr("requirements", "other.memory >= my.req_memory");
  job.set_expr("rank", "other.memory - my.req_memory");
  machine.set("memory", 32.0);
  machine.set_expr("requirements", "other.req_memory <= 64");
  for (auto _ : state) {
    const auto result = match::match_ads(job, machine);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassAdMatch);

void BM_EventQueueChurn(benchmark::State& state) {
  sim::EventQueue<std::size_t> queue;
  util::Rng rng(1);
  for (std::size_t i = 0; i < 1024; ++i) queue.push(rng.uniform(), i);
  for (auto _ : state) {
    const auto event = queue.pop();
    queue.push(event.time + rng.uniform(), event.payload);
    benchmark::DoNotOptimize(event.payload);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueChurn);

void BM_TraceGeneration(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto workload = trace::generate_cm5_small(7, jobs);
    benchmark::DoNotOptimize(workload.jobs.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_TraceGeneration)->Arg(1000)->Arg(10000);

// --- end-to-end simulator benchmark -------------------------------------

struct SimBench {
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double schedule_p95_us = 0.0;
  std::uint64_t events = 0;
  sim::SimulationResult result;
};

/// One full simulation at load on a 4x scaled-up paper cluster (4096
/// machines, ~300 concurrent jobs): large enough that the running-set and
/// per-pool bookkeeping the optimizations target actually dominates. The
/// event count is exact: every arrival is one event, every start pushes
/// exactly one job-end event, and this setup schedules no availability
/// changes — so events = submitted + attempts.
SimBench run_sim_bench(std::size_t trace_jobs, bool baseline) {
  trace::Workload w = trace::generate_cm5_small(11, trace_jobs);
  w = trace::drop_wide_jobs(std::move(w), 4096);
  w = trace::scale_to_load(std::move(w), 4096, 0.95);
  w = trace::sort_by_submit(std::move(w));

  obs::Registry registry;
  const auto estimator = core::make_estimator("successive-approximation");
  const auto policy = sched::make_policy("fcfs");
  sim::TimeSeries ts(50.0);
  sim::SimulationConfig cfg;
  cfg.seed = 7;
  cfg.explicit_feedback = true;
  cfg.timeseries = &ts;
  cfg.metrics = &registry;
  cfg.baseline_loop = baseline;

  SimBench out;
  const auto start = std::chrono::steady_clock::now();
  out.result = sim::simulate(w, sim::cm5_heterogeneous(24.0, 2048),
                             *estimator, *policy, cfg);
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.events = static_cast<std::uint64_t>(out.result.submitted) +
               static_cast<std::uint64_t>(out.result.attempts);
  out.events_per_sec = out.wall_seconds > 0.0
                           ? static_cast<double>(out.events) / out.wall_seconds
                           : 0.0;
  const auto snap = registry.snapshot();
  if (const auto* hist = snap.find("resmatch_sim_schedule_seconds")) {
    out.schedule_p95_us = hist->histogram.percentile(95.0) * 1e6;
  }
  return out;
}

/// Best-of-N: a single run lasts milliseconds, so one descheduling blip
/// can swamp it; the fastest repetition is the standard noise-robust
/// estimate of the engine's actual cost.
SimBench run_sim_bench_best(std::size_t trace_jobs, bool baseline,
                            int reps = 5) {
  SimBench best = run_sim_bench(trace_jobs, baseline);
  for (int i = 1; i < reps; ++i) {
    SimBench next = run_sim_bench(trace_jobs, baseline);
    if (next.wall_seconds < best.wall_seconds) best = std::move(next);
  }
  return best;
}

void print_sim_row(const char* engine, std::size_t jobs, const SimBench& b) {
  std::printf("%-10s  %8zu  %10llu  %8.3f  %12.0f  %14.2f\n", engine, jobs,
              static_cast<unsigned long long>(b.events), b.wall_seconds,
              b.events_per_sec, b.schedule_p95_us);
}

int run_sim_section(std::size_t sim_jobs, bool baseline_only,
                    const std::string& metrics_out) {
  std::printf("== simulator end-to-end (fcfs + successive-approximation, "
              "4096 machines) ==\n");
  std::printf("%-10s  %8s  %10s  %8s  %12s  %14s\n", "engine", "jobs",
              "events", "wall s", "events/s", "sched p95 us");

  obs::BenchRecord record("micro_core_sim");
  record.config("sim_jobs", static_cast<std::int64_t>(sim_jobs));
  record.config("baseline_loop", baseline_only ? "1" : "0");
  record.config("policy", "fcfs");
  record.config("estimator", "successive-approximation");
  record.config("machines", static_cast<std::int64_t>(4096));

  if (baseline_only) {
    const SimBench base = run_sim_bench_best(sim_jobs, /*baseline=*/true);
    print_sim_row("baseline", sim_jobs, base);
    record.summary("events_total", static_cast<double>(base.events));
    record.summary("wall_seconds", base.wall_seconds);
    record.summary("events_per_sec", base.events_per_sec);
    record.summary("schedule_p95_us", base.schedule_p95_us);
  } else {
    const SimBench opt = run_sim_bench_best(sim_jobs, /*baseline=*/false);
    const SimBench base = run_sim_bench_best(sim_jobs, /*baseline=*/true);
    print_sim_row("optimized", sim_jobs, opt);
    print_sim_row("baseline", sim_jobs, base);
    if (opt.result.completed != base.result.completed ||
        opt.result.utilization != base.result.utilization) {
      std::fprintf(stderr,
                   "error: engines disagree (completed %zu vs %zu) — "
                   "decision equivalence is broken\n",
                   opt.result.completed, base.result.completed);
      return 1;
    }
    const double speedup = base.events_per_sec > 0.0
                               ? opt.events_per_sec / base.events_per_sec
                               : 0.0;
    std::printf("speedup vs baseline loop: %.2fx (decisions identical)\n",
                speedup);
    record.summary("events_total", static_cast<double>(opt.events));
    record.summary("wall_seconds", opt.wall_seconds);
    record.summary("events_per_sec", opt.events_per_sec);
    record.summary("schedule_p95_us", opt.schedule_p95_us);
    record.summary("events_per_sec_baseline", base.events_per_sec);
    record.summary("schedule_p95_us_baseline", base.schedule_p95_us);
    record.summary("speedup_vs_baseline", speedup);
  }
  if (!metrics_out.empty()) {
    if (!record.write(metrics_out)) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return 0;
}

// --- cluster-scale engine comparison ------------------------------------
//
// Five arms over one scenario, each in a forked child so the parent can
// read the child's peak RSS from wait4() (process-wide peaks are sticky,
// so arms sharing a process would all report the largest one):
//
//   heap       materialized trace, pre-calendar heap engine (anchor)
//   calendar   materialized trace, merge engine (the default)
//   streamed   on-the-fly CM5 generation into the merge engine
//   shards1/4  streamed + sharded pool integration (1 and 4 workers)
//
// Every arm must produce a byte-identical result digest; a mismatch is a
// hard failure, making this bench double as the cluster-scale
// determinism gate CI runs at reduced size.

/// Result digest + timing shipped from the forked child over a pipe.
/// Integers exact; doubles compared bitwise (same decisions => same
/// arithmetic, process boundaries notwithstanding).
struct ScaleWire {
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t completed = 0;
  std::uint64_t attempts = 0;
  std::uint64_t resource_failures = 0;
  std::uint64_t dropped_unschedulable = 0;
  std::uint64_t dropped_attempt_cap = 0;
  std::uint64_t lowered_starts = 0;
  double utilization = 0.0;
  double makespan = 0.0;
  double mean_wait = 0.0;
  double mean_slowdown = 0.0;

  [[nodiscard]] bool same_digest(const ScaleWire& o) const {
    return completed == o.completed && attempts == o.attempts &&
           resource_failures == o.resource_failures &&
           dropped_unschedulable == o.dropped_unschedulable &&
           dropped_attempt_cap == o.dropped_attempt_cap &&
           lowered_starts == o.lowered_starts &&
           utilization == o.utilization && makespan == o.makespan &&
           mean_wait == o.mean_wait && mean_slowdown == o.mean_slowdown;
  }
};

enum class ScaleArm {
  kHeap,
  kCalendar,
  kStreamed,
  kShards1,
  kShards4,
  kBaseline
};

const char* scale_arm_name(ScaleArm arm) {
  switch (arm) {
    case ScaleArm::kHeap: return "heap";
    case ScaleArm::kCalendar: return "calendar";
    case ScaleArm::kStreamed: return "streamed";
    case ScaleArm::kShards1: return "shards1";
    case ScaleArm::kShards4: return "shards4";
    case ScaleArm::kBaseline: return "baseline";
  }
  return "?";
}

/// The full CM5 calibration scaled to the requested population. Few
/// capacity classes on purpose: pool integration is O(#pools) per event,
/// and burying the event-queue comparison under a huge pool scan would
/// measure the wrong thing.
trace::Cm5ModelConfig scale_model(std::size_t jobs, std::size_t machines) {
  trace::Cm5ModelConfig cfg;
  cfg.seed = 11;
  cfg.job_count = jobs;
  cfg.group_count = std::max<std::size_t>(64, jobs / 12);
  cfg.user_count = std::max<std::size_t>(8, jobs / 600);
  cfg.nominal_machines = machines;
  cfg.nominal_load = 0.9;
  return cfg;
}

sim::ClusterSpec scale_cluster(std::size_t machines) {
  const std::size_t per_pool = std::max<std::size_t>(1, machines / 4);
  return {{32.0, per_pool}, {24.0, per_pool}, {16.0, per_pool},
          {8.0, per_pool}};
}

ScaleWire run_scale_arm(std::size_t jobs, std::size_t machines,
                        ScaleArm arm) {
  const trace::Cm5ModelConfig model = scale_model(jobs, machines);
  const sim::ClusterSpec spec = scale_cluster(machines);
  const auto estimator = core::make_estimator("successive-approximation");
  const auto policy = sched::make_policy("fcfs");
  sim::SimulationConfig cfg;
  cfg.seed = 7;
  cfg.explicit_feedback = true;
  if (arm == ScaleArm::kHeap) cfg.heap_queue = true;
  if (arm == ScaleArm::kShards1) cfg.shards = 1;
  if (arm == ScaleArm::kShards4) cfg.shards = 4;
  if (arm == ScaleArm::kBaseline) {
    // The preserved seed engine: binary heap + pre-optimization event
    // loop. Decision-equivalent to every other arm (perf_equiv_test),
    // so it anchors the "engine vs where we started" speedup at scale.
    cfg.heap_queue = true;
    cfg.baseline_loop = true;
  }

  // Trace acquisition stays OUTSIDE the timer for every arm (the
  // streamed arms' stream constructor is their generation pass); the
  // timed region is simulate() alone. Peak RSS covers the whole child —
  // materialized arms pay for the vector, streamed arms don't, which is
  // exactly the memory claim this bench records.
  sim::SimulationResult result;
  double wall = 0.0;
  const bool streamed = arm == ScaleArm::kStreamed ||
                        arm == ScaleArm::kShards1 ||
                        arm == ScaleArm::kShards4;
  if (streamed) {
    trace::Cm5JobStream stream(model);
    const auto start = std::chrono::steady_clock::now();
    result = sim::simulate(stream, spec, *estimator, *policy, cfg);
    wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count();
  } else {
    const trace::Workload w = trace::generate_cm5(model);
    const auto start = std::chrono::steady_clock::now();
    result = sim::simulate(w, spec, *estimator, *policy, cfg);
    wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count();
  }

  ScaleWire wire;
  wire.wall_seconds = wall;
  // Exact event count: one event per arrival, one per attempt's end (this
  // scenario schedules no availability changes).
  wire.events = static_cast<std::uint64_t>(result.submitted) +
                static_cast<std::uint64_t>(result.attempts);
  wire.completed = result.completed;
  wire.attempts = result.attempts;
  wire.resource_failures = result.resource_failures;
  wire.dropped_unschedulable = result.dropped_unschedulable;
  wire.dropped_attempt_cap = result.dropped_attempt_cap;
  wire.lowered_starts = result.lowered_starts;
  wire.utilization = result.utilization;
  wire.makespan = result.makespan;
  wire.mean_wait = result.mean_wait;
  wire.mean_slowdown = result.mean_slowdown;
  return wire;
}

bool run_scale_arm_forked(std::size_t jobs, std::size_t machines,
                          ScaleArm arm, ScaleWire* out,
                          double* peak_rss_mib) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  std::fflush(nullptr);
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return false;
  }
  if (pid == 0) {
    close(fds[0]);
    const ScaleWire wire = run_scale_arm(jobs, machines, arm);
    const ssize_t n = write(fds[1], &wire, sizeof wire);
    _exit(n == static_cast<ssize_t>(sizeof wire) ? 0 : 3);
  }
  close(fds[1]);
  ScaleWire wire;
  std::size_t got = 0;
  while (got < sizeof wire) {
    const ssize_t n = read(fds[0], reinterpret_cast<char*>(&wire) + got,
                           sizeof wire - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  close(fds[0]);
  int status = 0;
  struct rusage ru {};
  if (wait4(pid, &status, 0, &ru) != pid) return false;
  if (got != sizeof wire || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return false;
  }
  *out = wire;
  *peak_rss_mib = static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
  return true;
}

int run_scale_section(std::size_t jobs, std::size_t machines,
                      const std::string& metrics_out) {
  std::printf("== cluster-scale engines (fcfs + successive-approximation, "
              "%zu machines, %zu jobs) ==\n",
              machines, jobs);
  std::printf("%-10s  %10s  %8s  %12s  %12s\n", "arm", "events", "wall s",
              "events/s", "peak MiB");

  // The baseline arm (seed engine: binary heap + pre-optimization loop)
  // runs last: it is the slowest by far at cluster scale, and its only
  // job is anchoring the "engine vs where we started" speedup.
  constexpr ScaleArm kArms[] = {ScaleArm::kHeap,    ScaleArm::kCalendar,
                                ScaleArm::kStreamed, ScaleArm::kShards1,
                                ScaleArm::kShards4,  ScaleArm::kBaseline};
  constexpr std::size_t kArmCount = std::size(kArms);
  ScaleWire wires[kArmCount];
  double rss[kArmCount] = {};
  double eps[kArmCount] = {};
  for (std::size_t i = 0; i < kArmCount; ++i) {
    if (!run_scale_arm_forked(jobs, machines, kArms[i], &wires[i],
                              &rss[i])) {
      std::fprintf(stderr, "error: scale arm '%s' failed\n",
                   scale_arm_name(kArms[i]));
      return 1;
    }
    eps[i] = wires[i].wall_seconds > 0.0
                 ? static_cast<double>(wires[i].events) /
                       wires[i].wall_seconds
                 : 0.0;
    std::printf("%-10s  %10llu  %8.3f  %12.0f  %12.1f\n",
                scale_arm_name(kArms[i]),
                static_cast<unsigned long long>(wires[i].events),
                wires[i].wall_seconds, eps[i], rss[i]);
  }

  for (std::size_t i = 1; i < kArmCount; ++i) {
    if (!wires[0].same_digest(wires[i])) {
      std::fprintf(stderr,
                   "error: arm '%s' diverged from '%s' (completed %llu vs "
                   "%llu) — cluster-scale determinism is broken\n",
                   scale_arm_name(kArms[i]), scale_arm_name(kArms[0]),
                   static_cast<unsigned long long>(wires[i].completed),
                   static_cast<unsigned long long>(wires[0].completed));
      return 1;
    }
  }
  const double speedup = eps[0] > 0.0 ? eps[1] / eps[0] : 0.0;
  const double speedup_vs_baseline = eps[5] > 0.0 ? eps[1] / eps[5] : 0.0;
  const double rss_ratio = rss[1] > 0.0 ? rss[2] / rss[1] : 0.0;
  std::printf("calendar vs heap: %.2fx events/s; calendar vs seed baseline "
              "loop: %.2fx; streamed peak RSS %.2fx of materialized (all "
              "arms byte-identical)\n",
              speedup, speedup_vs_baseline, rss_ratio);

  if (!metrics_out.empty()) {
    obs::BenchRecord record("micro_core_scale");
    record.config("scale_jobs", static_cast<std::int64_t>(jobs));
    record.config("scale_machines", static_cast<std::int64_t>(machines));
    record.config("policy", "fcfs");
    record.config("estimator", "successive-approximation");
    record.summary("events_total", static_cast<double>(wires[0].events));
    record.summary("events_per_sec_heap", eps[0]);
    record.summary("events_per_sec_calendar", eps[1]);
    record.summary("events_per_sec_streamed", eps[2]);
    record.summary("events_per_sec_shards1", eps[3]);
    record.summary("events_per_sec_shards4", eps[4]);
    record.summary("events_per_sec_baseline", eps[5]);
    record.summary("speedup_calendar_vs_heap", speedup);
    record.summary("speedup_calendar_vs_baseline", speedup_vs_baseline);
    record.summary("peak_rss_mib_heap", rss[0]);
    record.summary("peak_rss_mib_calendar", rss[1]);
    record.summary("peak_rss_mib_streamed", rss[2]);
    record.summary("peak_rss_mib_shards4", rss[4]);
    record.summary("rss_ratio_streamed_vs_materialized", rss_ratio);
    record.summary("equivalence_ok", 1.0);
    if (!record.write(metrics_out)) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return 0;
}

}  // namespace

// Custom main: peel off the repo-specific flags, hand the rest to
// google-benchmark (BENCHMARK_MAIN would reject them).
int main(int argc, char** argv) {
  bool sim_only = false;
  bool baseline_loop = false;
  bool scale = false;
  std::size_t sim_jobs = 3000;
  std::size_t scale_jobs = 200000;
  std::size_t scale_machines = 100000;
  std::string metrics_out;

  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sim-only") {
      sim_only = true;
    } else if (arg == "--baseline-loop") {
      baseline_loop = true;
    } else if (arg == "--scale") {
      scale = true;
    } else if (arg.rfind("--sim-jobs=", 0) == 0) {
      sim_jobs = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + std::strlen("--sim-jobs="), nullptr, 10));
    } else if (arg.rfind("--scale-jobs=", 0) == 0) {
      scale_jobs = static_cast<std::size_t>(std::strtoull(
          arg.c_str() + std::strlen("--scale-jobs="), nullptr, 10));
    } else if (arg.rfind("--scale-machines=", 0) == 0) {
      scale_machines = static_cast<std::size_t>(std::strtoull(
          arg.c_str() + std::strlen("--scale-machines="), nullptr, 10));
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else {
      passthrough.push_back(argv[i]);
    }
  }

  if (scale) {
    return run_scale_section(scale_jobs, scale_machines, metrics_out);
  }

  if (!sim_only) {
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return run_sim_section(sim_jobs, baseline_loop, metrics_out);
}
