// Micro-benchmarks (google-benchmark) for the hot paths: estimator
// estimate/feedback cycles, cluster allocation, ClassAd evaluation, event
// queue churn, and synthetic trace generation throughput — plus an
// end-to-end simulator benchmark (events/sec, schedule-pass p95) that A/Bs
// the optimized engine against the pre-optimization reference loop.
//
// Extra flags (in addition to the google-benchmark ones):
//   --sim-only          run only the end-to-end simulator benchmark
//   --sim-jobs=N        trace size for the simulator benchmark (def. 3000)
//   --baseline-loop     measure ONLY the reference engine (A/B anchor)
//   --metrics-out=PATH  write a schema-v1 BENCH_sim.json record
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "match/classad.hpp"
#include "obs/bench_record.hpp"
#include "obs/metrics.hpp"
#include "sched/factory.hpp"
#include "sim/cluster.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/timeseries.hpp"
#include "trace/cm5_model.hpp"
#include "trace/transforms.hpp"
#include "util/rng.hpp"

namespace {

using namespace resmatch;

trace::JobRecord bench_job(std::uint64_t i) {
  trace::JobRecord j;
  j.id = i;
  j.user = static_cast<UserId>(i % 200);
  j.app = static_cast<AppId>(i % 17);
  j.requested_mem_mib = 32.0;
  j.used_mem_mib = 5.0;
  j.nodes = 32;
  j.runtime = 100;
  return j;
}

void BM_SuccessiveApproxCycle(benchmark::State& state) {
  auto est = core::make_estimator("successive-approximation");
  est->set_ladder(core::CapacityLadder({1, 2, 4, 8, 16, 32}));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto job = bench_job(i++ % 1000);
    const MiB grant = est->estimate(job, {});
    core::Feedback fb;
    fb.success = grant >= job.used_mem_mib;
    fb.granted_mib = grant;
    est->feedback(job, fb);
    benchmark::DoNotOptimize(grant);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SuccessiveApproxCycle);

void BM_RlEstimatorCycle(benchmark::State& state) {
  auto est = core::make_estimator("reinforcement-learning");
  est->set_ladder(core::CapacityLadder({1, 2, 4, 8, 16, 32}));
  core::SystemState sys;
  sys.busy_fraction = 0.5;
  sys.queue_length = 8;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto job = bench_job(i++);
    const MiB grant = est->estimate(job, sys);
    core::Feedback fb;
    fb.success = grant >= job.used_mem_mib;
    fb.granted_mib = grant;
    est->feedback(job, fb);
    benchmark::DoNotOptimize(grant);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RlEstimatorCycle);

void BM_ClusterAllocateRelease(benchmark::State& state) {
  sim::Cluster cluster(sim::cm5_heterogeneous(24.0));
  for (auto _ : state) {
    auto alloc = cluster.allocate(32, 24.0);
    benchmark::DoNotOptimize(alloc);
    if (alloc) cluster.release(*alloc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClusterAllocateRelease);

void BM_ClassAdMatch(benchmark::State& state) {
  match::ClassAd job, machine;
  job.set("req_memory", 16.0);
  job.set_expr("requirements", "other.memory >= my.req_memory");
  job.set_expr("rank", "other.memory - my.req_memory");
  machine.set("memory", 32.0);
  machine.set_expr("requirements", "other.req_memory <= 64");
  for (auto _ : state) {
    const auto result = match::match_ads(job, machine);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassAdMatch);

void BM_EventQueueChurn(benchmark::State& state) {
  sim::EventQueue<std::size_t> queue;
  util::Rng rng(1);
  for (std::size_t i = 0; i < 1024; ++i) queue.push(rng.uniform(), i);
  for (auto _ : state) {
    const auto event = queue.pop();
    queue.push(event.time + rng.uniform(), event.payload);
    benchmark::DoNotOptimize(event.payload);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueChurn);

void BM_TraceGeneration(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto workload = trace::generate_cm5_small(7, jobs);
    benchmark::DoNotOptimize(workload.jobs.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_TraceGeneration)->Arg(1000)->Arg(10000);

// --- end-to-end simulator benchmark -------------------------------------

struct SimBench {
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double schedule_p95_us = 0.0;
  std::uint64_t events = 0;
  sim::SimulationResult result;
};

/// One full simulation at load on a 4x scaled-up paper cluster (4096
/// machines, ~300 concurrent jobs): large enough that the running-set and
/// per-pool bookkeeping the optimizations target actually dominates. The
/// event count is exact: every arrival is one event, every start pushes
/// exactly one job-end event, and this setup schedules no availability
/// changes — so events = submitted + attempts.
SimBench run_sim_bench(std::size_t trace_jobs, bool baseline) {
  trace::Workload w = trace::generate_cm5_small(11, trace_jobs);
  w = trace::drop_wide_jobs(std::move(w), 4096);
  w = trace::scale_to_load(std::move(w), 4096, 0.95);
  w = trace::sort_by_submit(std::move(w));

  obs::Registry registry;
  const auto estimator = core::make_estimator("successive-approximation");
  const auto policy = sched::make_policy("fcfs");
  sim::TimeSeries ts(50.0);
  sim::SimulationConfig cfg;
  cfg.seed = 7;
  cfg.explicit_feedback = true;
  cfg.timeseries = &ts;
  cfg.metrics = &registry;
  cfg.baseline_loop = baseline;

  SimBench out;
  const auto start = std::chrono::steady_clock::now();
  out.result = sim::simulate(w, sim::cm5_heterogeneous(24.0, 2048),
                             *estimator, *policy, cfg);
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.events = static_cast<std::uint64_t>(out.result.submitted) +
               static_cast<std::uint64_t>(out.result.attempts);
  out.events_per_sec = out.wall_seconds > 0.0
                           ? static_cast<double>(out.events) / out.wall_seconds
                           : 0.0;
  const auto snap = registry.snapshot();
  if (const auto* hist = snap.find("resmatch_sim_schedule_seconds")) {
    out.schedule_p95_us = hist->histogram.percentile(95.0) * 1e6;
  }
  return out;
}

/// Best-of-N: a single run lasts milliseconds, so one descheduling blip
/// can swamp it; the fastest repetition is the standard noise-robust
/// estimate of the engine's actual cost.
SimBench run_sim_bench_best(std::size_t trace_jobs, bool baseline,
                            int reps = 5) {
  SimBench best = run_sim_bench(trace_jobs, baseline);
  for (int i = 1; i < reps; ++i) {
    SimBench next = run_sim_bench(trace_jobs, baseline);
    if (next.wall_seconds < best.wall_seconds) best = std::move(next);
  }
  return best;
}

void print_sim_row(const char* engine, std::size_t jobs, const SimBench& b) {
  std::printf("%-10s  %8zu  %10llu  %8.3f  %12.0f  %14.2f\n", engine, jobs,
              static_cast<unsigned long long>(b.events), b.wall_seconds,
              b.events_per_sec, b.schedule_p95_us);
}

int run_sim_section(std::size_t sim_jobs, bool baseline_only,
                    const std::string& metrics_out) {
  std::printf("== simulator end-to-end (fcfs + successive-approximation, "
              "4096 machines) ==\n");
  std::printf("%-10s  %8s  %10s  %8s  %12s  %14s\n", "engine", "jobs",
              "events", "wall s", "events/s", "sched p95 us");

  obs::BenchRecord record("micro_core_sim");
  record.config("sim_jobs", static_cast<std::int64_t>(sim_jobs));
  record.config("baseline_loop", baseline_only ? "1" : "0");
  record.config("policy", "fcfs");
  record.config("estimator", "successive-approximation");
  record.config("machines", static_cast<std::int64_t>(4096));

  if (baseline_only) {
    const SimBench base = run_sim_bench_best(sim_jobs, /*baseline=*/true);
    print_sim_row("baseline", sim_jobs, base);
    record.summary("events_total", static_cast<double>(base.events));
    record.summary("wall_seconds", base.wall_seconds);
    record.summary("events_per_sec", base.events_per_sec);
    record.summary("schedule_p95_us", base.schedule_p95_us);
  } else {
    const SimBench opt = run_sim_bench_best(sim_jobs, /*baseline=*/false);
    const SimBench base = run_sim_bench_best(sim_jobs, /*baseline=*/true);
    print_sim_row("optimized", sim_jobs, opt);
    print_sim_row("baseline", sim_jobs, base);
    if (opt.result.completed != base.result.completed ||
        opt.result.utilization != base.result.utilization) {
      std::fprintf(stderr,
                   "error: engines disagree (completed %zu vs %zu) — "
                   "decision equivalence is broken\n",
                   opt.result.completed, base.result.completed);
      return 1;
    }
    const double speedup = base.events_per_sec > 0.0
                               ? opt.events_per_sec / base.events_per_sec
                               : 0.0;
    std::printf("speedup vs baseline loop: %.2fx (decisions identical)\n",
                speedup);
    record.summary("events_total", static_cast<double>(opt.events));
    record.summary("wall_seconds", opt.wall_seconds);
    record.summary("events_per_sec", opt.events_per_sec);
    record.summary("schedule_p95_us", opt.schedule_p95_us);
    record.summary("events_per_sec_baseline", base.events_per_sec);
    record.summary("schedule_p95_us_baseline", base.schedule_p95_us);
    record.summary("speedup_vs_baseline", speedup);
  }
  if (!metrics_out.empty()) {
    if (!record.write(metrics_out)) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return 0;
}

}  // namespace

// Custom main: peel off the repo-specific flags, hand the rest to
// google-benchmark (BENCHMARK_MAIN would reject them).
int main(int argc, char** argv) {
  bool sim_only = false;
  bool baseline_loop = false;
  std::size_t sim_jobs = 3000;
  std::string metrics_out;

  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sim-only") {
      sim_only = true;
    } else if (arg == "--baseline-loop") {
      baseline_loop = true;
    } else if (arg.rfind("--sim-jobs=", 0) == 0) {
      sim_jobs = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + std::strlen("--sim-jobs="), nullptr, 10));
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else {
      passthrough.push_back(argv[i]);
    }
  }

  if (!sim_only) {
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return run_sim_section(sim_jobs, baseline_loop, metrics_out);
}
