// Figure 6: the ratio between slowdown without resource estimation and
// slowdown with resource estimation, across offered loads, on the
// 512 x 32 MiB + 512 x 24 MiB cluster.
//
// Paper reference points: the ratio never drops below 1 (estimation never
// hurts) and peaks dramatically around 60% load, where the queue is short
// enough that freeing resources translates directly into less waiting.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "exp/report.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_trace_jobs=*/0);
  exp::print_banner("Figure 6: slowdown ratio (no estimation / estimation)",
                    "Yom-Tov & Aridor 2006, Figure 6");

  // load_sweep rescales the workload per point; build the fixture unscaled.
  const exp::BenchSetup setup = args.heterogeneous_setup(24.0, /*load=*/0.0);
  const trace::Workload& workload = setup.workload;
  const sim::ClusterSpec& cluster = setup.cluster;

  exp::RunSpec spec = args.run_spec();
  const std::vector<double> loads = {0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  obs::Registry registry;
  const auto result = exp::load_sweep(workload, cluster, loads, spec,
                                      args.runner_options(&registry));
  exp::report_sweep_errors("load point", result.errors);
  const auto& sweep = result.points;

  util::ConsoleTable table({"load", "slowdown(none)", "slowdown(est)",
                            "ratio none/est", "wait(none) s", "wait(est) s"});
  // Degenerate ratios (zero slowdown under estimation — a perfect run)
  // render as NaN and stay out of the peak/min scans instead of posing
  // as the worst possible ratio.
  double peak_ratio = 0.0, peak_load = 0.0;
  double min_ratio = 1e9;
  std::size_t degenerate = 0;
  for (const auto& p : sweep) {
    const auto ratio = p.slowdown_ratio();
    table.add_numeric_row({p.load, p.without_estimation.mean_slowdown,
                   p.with_estimation.mean_slowdown, exp::ratio_or_nan(ratio),
                   p.without_estimation.mean_wait,
                   p.with_estimation.mean_wait});
    if (!ratio.has_value()) {
      ++degenerate;
      continue;
    }
    if (*ratio > peak_ratio) {
      peak_ratio = *ratio;
      peak_load = p.load;
    }
    min_ratio = std::min(min_ratio, *ratio);
  }
  table.print();

  if (degenerate == sweep.size()) {
    std::printf("\nevery point had zero slowdown under estimation; "
                "no finite ratios to rank\n");
  } else {
    std::printf("\npeak slowdown ratio: %.2fx at load %.0f%%   (paper: peak near 60%%)\n",
                peak_ratio, 100.0 * peak_load);
    std::printf("minimum ratio:       %.2f   (paper: never below 1)\n", min_ratio);
  }
  if (degenerate > 0) {
    std::printf("(%zu point%s with zero estimation slowdown excluded)\n",
                degenerate, degenerate == 1 ? "" : "s");
  }

  exp::write_load_sweep_csv(args.csv, sweep);
  exp::maybe_write_sweep_record(
      args, "fig6_slowdown", result.stats, registry, [&] {
        exp::RunnerOptions serial;
        serial.jobs = 1;
        return exp::load_sweep(workload, cluster, loads, spec, serial).stats;
      });
  return 0;
}
