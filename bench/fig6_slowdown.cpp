// Figure 6: the ratio between slowdown without resource estimation and
// slowdown with resource estimation, across offered loads, on the
// 512 x 32 MiB + 512 x 24 MiB cluster.
//
// Paper reference points: the ratio never drops below 1 (estimation never
// hurts) and peaks dramatically around 60% load, where the queue is short
// enough that freeing resources translates directly into less waiting.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "exp/report.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  const auto args = exp::BenchArgs::parse(argc, argv, /*default_jobs=*/0);
  exp::print_banner("Figure 6: slowdown ratio (no estimation / estimation)",
                    "Yom-Tov & Aridor 2006, Figure 6");

  // load_sweep rescales the workload per point; build the fixture unscaled.
  const exp::BenchSetup setup = args.heterogeneous_setup(24.0, /*load=*/0.0);
  const trace::Workload& workload = setup.workload;
  const sim::ClusterSpec& cluster = setup.cluster;

  exp::RunSpec spec = args.run_spec();
  const std::vector<double> loads = {0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  const auto sweep = exp::load_sweep(workload, cluster, loads, spec);

  util::ConsoleTable table({"load", "slowdown(none)", "slowdown(est)",
                            "ratio none/est", "wait(none) s", "wait(est) s"});
  double peak_ratio = 0.0, peak_load = 0.0;
  for (const auto& p : sweep) {
    table.add_numeric_row({p.load, p.without_estimation.mean_slowdown,
                   p.with_estimation.mean_slowdown, p.slowdown_ratio(),
                   p.without_estimation.mean_wait,
                   p.with_estimation.mean_wait});
    if (p.slowdown_ratio() > peak_ratio) {
      peak_ratio = p.slowdown_ratio();
      peak_load = p.load;
    }
  }
  table.print();

  std::printf("\npeak slowdown ratio: %.2fx at load %.0f%%   (paper: peak near 60%%)\n",
              peak_ratio, 100.0 * peak_load);
  double min_ratio = 1e9;
  for (const auto& p : sweep) min_ratio = std::min(min_ratio, p.slowdown_ratio());
  std::printf("minimum ratio:       %.2f   (paper: never below 1)\n", min_ratio);

  exp::write_load_sweep_csv(args.csv, sweep);
  return 0;
}
