# Empty dependencies file for fig8_cluster_sweep.
# This may be replaced when dependencies are built.
