
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_runtime_prediction.cpp" "bench/CMakeFiles/ablation_runtime_prediction.dir/ablation_runtime_prediction.cpp.o" "gcc" "bench/CMakeFiles/ablation_runtime_prediction.dir/ablation_runtime_prediction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/match/CMakeFiles/match.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
