# Empty dependencies file for ablation_runtime_prediction.
# This may be replaced when dependencies are built.
