file(REMOVE_RECURSE
  "CMakeFiles/ablation_runtime_prediction.dir/ablation_runtime_prediction.cpp.o"
  "CMakeFiles/ablation_runtime_prediction.dir/ablation_runtime_prediction.cpp.o.d"
  "ablation_runtime_prediction"
  "ablation_runtime_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_runtime_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
