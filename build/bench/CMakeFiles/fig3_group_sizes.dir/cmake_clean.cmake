file(REMOVE_RECURSE
  "CMakeFiles/fig3_group_sizes.dir/fig3_group_sizes.cpp.o"
  "CMakeFiles/fig3_group_sizes.dir/fig3_group_sizes.cpp.o.d"
  "fig3_group_sizes"
  "fig3_group_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_group_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
