# Empty dependencies file for fig3_group_sizes.
# This may be replaced when dependencies are built.
