file(REMOVE_RECURSE
  "CMakeFiles/fig7_convergence.dir/fig7_convergence.cpp.o"
  "CMakeFiles/fig7_convergence.dir/fig7_convergence.cpp.o.d"
  "fig7_convergence"
  "fig7_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
