# Empty dependencies file for fig4_group_quality.
# This may be replaced when dependencies are built.
