# Empty dependencies file for table1_estimators.
# This may be replaced when dependencies are built.
