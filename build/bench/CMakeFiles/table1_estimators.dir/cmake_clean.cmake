file(REMOVE_RECURSE
  "CMakeFiles/table1_estimators.dir/table1_estimators.cpp.o"
  "CMakeFiles/table1_estimators.dir/table1_estimators.cpp.o.d"
  "table1_estimators"
  "table1_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
