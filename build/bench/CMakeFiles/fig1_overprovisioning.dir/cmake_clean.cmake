file(REMOVE_RECURSE
  "CMakeFiles/fig1_overprovisioning.dir/fig1_overprovisioning.cpp.o"
  "CMakeFiles/fig1_overprovisioning.dir/fig1_overprovisioning.cpp.o.d"
  "fig1_overprovisioning"
  "fig1_overprovisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_overprovisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
