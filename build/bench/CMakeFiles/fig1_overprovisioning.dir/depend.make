# Empty dependencies file for fig1_overprovisioning.
# This may be replaced when dependencies are built.
