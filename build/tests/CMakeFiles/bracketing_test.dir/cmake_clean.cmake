file(REMOVE_RECURSE
  "CMakeFiles/bracketing_test.dir/bracketing_test.cpp.o"
  "CMakeFiles/bracketing_test.dir/bracketing_test.cpp.o.d"
  "bracketing_test"
  "bracketing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bracketing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
