# Empty dependencies file for bracketing_test.
# This may be replaced when dependencies are built.
