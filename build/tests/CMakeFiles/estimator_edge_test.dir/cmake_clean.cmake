file(REMOVE_RECURSE
  "CMakeFiles/estimator_edge_test.dir/estimator_edge_test.cpp.o"
  "CMakeFiles/estimator_edge_test.dir/estimator_edge_test.cpp.o.d"
  "estimator_edge_test"
  "estimator_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
