# Empty dependencies file for estimator_edge_test.
# This may be replaced when dependencies are built.
