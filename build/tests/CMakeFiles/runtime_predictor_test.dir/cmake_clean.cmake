file(REMOVE_RECURSE
  "CMakeFiles/runtime_predictor_test.dir/runtime_predictor_test.cpp.o"
  "CMakeFiles/runtime_predictor_test.dir/runtime_predictor_test.cpp.o.d"
  "runtime_predictor_test"
  "runtime_predictor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
