# Empty dependencies file for property_simulator_test.
# This may be replaced when dependencies are built.
