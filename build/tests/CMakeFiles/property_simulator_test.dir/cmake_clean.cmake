file(REMOVE_RECURSE
  "CMakeFiles/property_simulator_test.dir/property_simulator_test.cpp.o"
  "CMakeFiles/property_simulator_test.dir/property_simulator_test.cpp.o.d"
  "property_simulator_test"
  "property_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
