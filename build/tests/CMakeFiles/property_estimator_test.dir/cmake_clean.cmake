file(REMOVE_RECURSE
  "CMakeFiles/property_estimator_test.dir/property_estimator_test.cpp.o"
  "CMakeFiles/property_estimator_test.dir/property_estimator_test.cpp.o.d"
  "property_estimator_test"
  "property_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
