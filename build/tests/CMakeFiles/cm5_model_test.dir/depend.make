# Empty dependencies file for cm5_model_test.
# This may be replaced when dependencies are built.
