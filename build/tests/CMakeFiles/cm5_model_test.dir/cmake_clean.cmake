file(REMOVE_RECURSE
  "CMakeFiles/cm5_model_test.dir/cm5_model_test.cpp.o"
  "CMakeFiles/cm5_model_test.dir/cm5_model_test.cpp.o.d"
  "cm5_model_test"
  "cm5_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm5_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
