# Empty compiler generated dependencies file for property_cm5_test.
# This may be replaced when dependencies are built.
