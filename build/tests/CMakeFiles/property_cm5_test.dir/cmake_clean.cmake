file(REMOVE_RECURSE
  "CMakeFiles/property_cm5_test.dir/property_cm5_test.cpp.o"
  "CMakeFiles/property_cm5_test.dir/property_cm5_test.cpp.o.d"
  "property_cm5_test"
  "property_cm5_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_cm5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
