# Empty dependencies file for key_search_test.
# This may be replaced when dependencies are built.
