file(REMOVE_RECURSE
  "CMakeFiles/key_search_test.dir/key_search_test.cpp.o"
  "CMakeFiles/key_search_test.dir/key_search_test.cpp.o.d"
  "key_search_test"
  "key_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
