# Empty compiler generated dependencies file for gangmatch_test.
# This may be replaced when dependencies are built.
