file(REMOVE_RECURSE
  "CMakeFiles/gangmatch_test.dir/gangmatch_test.cpp.o"
  "CMakeFiles/gangmatch_test.dir/gangmatch_test.cpp.o.d"
  "gangmatch_test"
  "gangmatch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gangmatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
