file(REMOVE_RECURSE
  "CMakeFiles/property_match_test.dir/property_match_test.cpp.o"
  "CMakeFiles/property_match_test.dir/property_match_test.cpp.o.d"
  "property_match_test"
  "property_match_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
