# Empty compiler generated dependencies file for property_match_test.
# This may be replaced when dependencies are built.
