file(REMOVE_RECURSE
  "CMakeFiles/property_trace_test.dir/property_trace_test.cpp.o"
  "CMakeFiles/property_trace_test.dir/property_trace_test.cpp.o.d"
  "property_trace_test"
  "property_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
