file(REMOVE_RECURSE
  "CMakeFiles/stats.dir/histogram.cpp.o"
  "CMakeFiles/stats.dir/histogram.cpp.o.d"
  "CMakeFiles/stats.dir/percentile.cpp.o"
  "CMakeFiles/stats.dir/percentile.cpp.o.d"
  "CMakeFiles/stats.dir/regression.cpp.o"
  "CMakeFiles/stats.dir/regression.cpp.o.d"
  "CMakeFiles/stats.dir/summary.cpp.o"
  "CMakeFiles/stats.dir/summary.cpp.o.d"
  "libresmatch_stats.a"
  "libresmatch_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
