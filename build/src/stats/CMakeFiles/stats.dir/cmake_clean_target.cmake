file(REMOVE_RECURSE
  "libresmatch_stats.a"
)
