# Empty compiler generated dependencies file for stats.
# This may be replaced when dependencies are built.
