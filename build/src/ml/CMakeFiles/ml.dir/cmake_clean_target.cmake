file(REMOVE_RECURSE
  "libresmatch_ml.a"
)
