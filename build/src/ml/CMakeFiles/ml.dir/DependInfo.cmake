
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/discretizer.cpp" "src/ml/CMakeFiles/ml.dir/discretizer.cpp.o" "gcc" "src/ml/CMakeFiles/ml.dir/discretizer.cpp.o.d"
  "/root/repo/src/ml/features.cpp" "src/ml/CMakeFiles/ml.dir/features.cpp.o" "gcc" "src/ml/CMakeFiles/ml.dir/features.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/qlearning.cpp" "src/ml/CMakeFiles/ml.dir/qlearning.cpp.o" "gcc" "src/ml/CMakeFiles/ml.dir/qlearning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
