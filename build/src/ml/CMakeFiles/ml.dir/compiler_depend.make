# Empty compiler generated dependencies file for ml.
# This may be replaced when dependencies are built.
