file(REMOVE_RECURSE
  "CMakeFiles/ml.dir/discretizer.cpp.o"
  "CMakeFiles/ml.dir/discretizer.cpp.o.d"
  "CMakeFiles/ml.dir/features.cpp.o"
  "CMakeFiles/ml.dir/features.cpp.o.d"
  "CMakeFiles/ml.dir/knn.cpp.o"
  "CMakeFiles/ml.dir/knn.cpp.o.d"
  "CMakeFiles/ml.dir/qlearning.cpp.o"
  "CMakeFiles/ml.dir/qlearning.cpp.o.d"
  "libresmatch_ml.a"
  "libresmatch_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
