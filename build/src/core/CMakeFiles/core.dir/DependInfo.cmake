
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bracketing.cpp" "src/core/CMakeFiles/core.dir/bracketing.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/bracketing.cpp.o.d"
  "/root/repo/src/core/capacity_ladder.cpp" "src/core/CMakeFiles/core.dir/capacity_ladder.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/capacity_ladder.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/factory.cpp" "src/core/CMakeFiles/core.dir/factory.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/factory.cpp.o.d"
  "/root/repo/src/core/key_search.cpp" "src/core/CMakeFiles/core.dir/key_search.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/key_search.cpp.o.d"
  "/root/repo/src/core/last_instance.cpp" "src/core/CMakeFiles/core.dir/last_instance.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/last_instance.cpp.o.d"
  "/root/repo/src/core/multi_resource.cpp" "src/core/CMakeFiles/core.dir/multi_resource.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/multi_resource.cpp.o.d"
  "/root/repo/src/core/prereq_estimator.cpp" "src/core/CMakeFiles/core.dir/prereq_estimator.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/prereq_estimator.cpp.o.d"
  "/root/repo/src/core/regression_estimator.cpp" "src/core/CMakeFiles/core.dir/regression_estimator.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/regression_estimator.cpp.o.d"
  "/root/repo/src/core/rl_estimator.cpp" "src/core/CMakeFiles/core.dir/rl_estimator.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/rl_estimator.cpp.o.d"
  "/root/repo/src/core/runtime_predictor.cpp" "src/core/CMakeFiles/core.dir/runtime_predictor.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/runtime_predictor.cpp.o.d"
  "/root/repo/src/core/similarity.cpp" "src/core/CMakeFiles/core.dir/similarity.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/similarity.cpp.o.d"
  "/root/repo/src/core/successive_approximation.cpp" "src/core/CMakeFiles/core.dir/successive_approximation.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/successive_approximation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
