file(REMOVE_RECURSE
  "libresmatch_core.a"
)
