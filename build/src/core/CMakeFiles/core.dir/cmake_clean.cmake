file(REMOVE_RECURSE
  "CMakeFiles/core.dir/bracketing.cpp.o"
  "CMakeFiles/core.dir/bracketing.cpp.o.d"
  "CMakeFiles/core.dir/capacity_ladder.cpp.o"
  "CMakeFiles/core.dir/capacity_ladder.cpp.o.d"
  "CMakeFiles/core.dir/estimator.cpp.o"
  "CMakeFiles/core.dir/estimator.cpp.o.d"
  "CMakeFiles/core.dir/factory.cpp.o"
  "CMakeFiles/core.dir/factory.cpp.o.d"
  "CMakeFiles/core.dir/key_search.cpp.o"
  "CMakeFiles/core.dir/key_search.cpp.o.d"
  "CMakeFiles/core.dir/last_instance.cpp.o"
  "CMakeFiles/core.dir/last_instance.cpp.o.d"
  "CMakeFiles/core.dir/multi_resource.cpp.o"
  "CMakeFiles/core.dir/multi_resource.cpp.o.d"
  "CMakeFiles/core.dir/prereq_estimator.cpp.o"
  "CMakeFiles/core.dir/prereq_estimator.cpp.o.d"
  "CMakeFiles/core.dir/regression_estimator.cpp.o"
  "CMakeFiles/core.dir/regression_estimator.cpp.o.d"
  "CMakeFiles/core.dir/rl_estimator.cpp.o"
  "CMakeFiles/core.dir/rl_estimator.cpp.o.d"
  "CMakeFiles/core.dir/runtime_predictor.cpp.o"
  "CMakeFiles/core.dir/runtime_predictor.cpp.o.d"
  "CMakeFiles/core.dir/similarity.cpp.o"
  "CMakeFiles/core.dir/similarity.cpp.o.d"
  "CMakeFiles/core.dir/successive_approximation.cpp.o"
  "CMakeFiles/core.dir/successive_approximation.cpp.o.d"
  "libresmatch_core.a"
  "libresmatch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
