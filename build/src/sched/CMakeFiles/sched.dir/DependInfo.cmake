
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/easy_backfill.cpp" "src/sched/CMakeFiles/sched.dir/easy_backfill.cpp.o" "gcc" "src/sched/CMakeFiles/sched.dir/easy_backfill.cpp.o.d"
  "/root/repo/src/sched/factory.cpp" "src/sched/CMakeFiles/sched.dir/factory.cpp.o" "gcc" "src/sched/CMakeFiles/sched.dir/factory.cpp.o.d"
  "/root/repo/src/sched/fcfs.cpp" "src/sched/CMakeFiles/sched.dir/fcfs.cpp.o" "gcc" "src/sched/CMakeFiles/sched.dir/fcfs.cpp.o.d"
  "/root/repo/src/sched/policy.cpp" "src/sched/CMakeFiles/sched.dir/policy.cpp.o" "gcc" "src/sched/CMakeFiles/sched.dir/policy.cpp.o.d"
  "/root/repo/src/sched/sjf.cpp" "src/sched/CMakeFiles/sched.dir/sjf.cpp.o" "gcc" "src/sched/CMakeFiles/sched.dir/sjf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
