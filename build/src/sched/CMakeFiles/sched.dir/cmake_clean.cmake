file(REMOVE_RECURSE
  "CMakeFiles/sched.dir/easy_backfill.cpp.o"
  "CMakeFiles/sched.dir/easy_backfill.cpp.o.d"
  "CMakeFiles/sched.dir/factory.cpp.o"
  "CMakeFiles/sched.dir/factory.cpp.o.d"
  "CMakeFiles/sched.dir/fcfs.cpp.o"
  "CMakeFiles/sched.dir/fcfs.cpp.o.d"
  "CMakeFiles/sched.dir/policy.cpp.o"
  "CMakeFiles/sched.dir/policy.cpp.o.d"
  "CMakeFiles/sched.dir/sjf.cpp.o"
  "CMakeFiles/sched.dir/sjf.cpp.o.d"
  "libresmatch_sched.a"
  "libresmatch_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
