file(REMOVE_RECURSE
  "libresmatch_sched.a"
)
