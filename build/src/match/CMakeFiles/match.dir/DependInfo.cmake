
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/match/classad.cpp" "src/match/CMakeFiles/match.dir/classad.cpp.o" "gcc" "src/match/CMakeFiles/match.dir/classad.cpp.o.d"
  "/root/repo/src/match/gangmatch.cpp" "src/match/CMakeFiles/match.dir/gangmatch.cpp.o" "gcc" "src/match/CMakeFiles/match.dir/gangmatch.cpp.o.d"
  "/root/repo/src/match/lexer.cpp" "src/match/CMakeFiles/match.dir/lexer.cpp.o" "gcc" "src/match/CMakeFiles/match.dir/lexer.cpp.o.d"
  "/root/repo/src/match/parser.cpp" "src/match/CMakeFiles/match.dir/parser.cpp.o" "gcc" "src/match/CMakeFiles/match.dir/parser.cpp.o.d"
  "/root/repo/src/match/value.cpp" "src/match/CMakeFiles/match.dir/value.cpp.o" "gcc" "src/match/CMakeFiles/match.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
