file(REMOVE_RECURSE
  "libresmatch_match.a"
)
