# Empty compiler generated dependencies file for match.
# This may be replaced when dependencies are built.
