file(REMOVE_RECURSE
  "CMakeFiles/match.dir/classad.cpp.o"
  "CMakeFiles/match.dir/classad.cpp.o.d"
  "CMakeFiles/match.dir/gangmatch.cpp.o"
  "CMakeFiles/match.dir/gangmatch.cpp.o.d"
  "CMakeFiles/match.dir/lexer.cpp.o"
  "CMakeFiles/match.dir/lexer.cpp.o.d"
  "CMakeFiles/match.dir/parser.cpp.o"
  "CMakeFiles/match.dir/parser.cpp.o.d"
  "CMakeFiles/match.dir/value.cpp.o"
  "CMakeFiles/match.dir/value.cpp.o.d"
  "libresmatch_match.a"
  "libresmatch_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
