file(REMOVE_RECURSE
  "CMakeFiles/sim.dir/cluster.cpp.o"
  "CMakeFiles/sim.dir/cluster.cpp.o.d"
  "CMakeFiles/sim.dir/metrics.cpp.o"
  "CMakeFiles/sim.dir/metrics.cpp.o.d"
  "CMakeFiles/sim.dir/simulator.cpp.o"
  "CMakeFiles/sim.dir/simulator.cpp.o.d"
  "CMakeFiles/sim.dir/timeseries.cpp.o"
  "CMakeFiles/sim.dir/timeseries.cpp.o.d"
  "libresmatch_sim.a"
  "libresmatch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
