file(REMOVE_RECURSE
  "libresmatch_sim.a"
)
