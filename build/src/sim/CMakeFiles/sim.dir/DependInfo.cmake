
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/timeseries.cpp" "src/sim/CMakeFiles/sim.dir/timeseries.cpp.o" "gcc" "src/sim/CMakeFiles/sim.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sched.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
