file(REMOVE_RECURSE
  "libresmatch_exp.a"
)
