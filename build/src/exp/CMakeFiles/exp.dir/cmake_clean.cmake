file(REMOVE_RECURSE
  "CMakeFiles/exp.dir/experiment.cpp.o"
  "CMakeFiles/exp.dir/experiment.cpp.o.d"
  "CMakeFiles/exp.dir/report.cpp.o"
  "CMakeFiles/exp.dir/report.cpp.o.d"
  "libresmatch_exp.a"
  "libresmatch_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
