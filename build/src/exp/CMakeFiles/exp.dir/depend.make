# Empty dependencies file for exp.
# This may be replaced when dependencies are built.
