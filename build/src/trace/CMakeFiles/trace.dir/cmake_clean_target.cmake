file(REMOVE_RECURSE
  "libresmatch_trace.a"
)
