
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cpp" "src/trace/CMakeFiles/trace.dir/analysis.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/analysis.cpp.o.d"
  "/root/repo/src/trace/cm5_model.cpp" "src/trace/CMakeFiles/trace.dir/cm5_model.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/cm5_model.cpp.o.d"
  "/root/repo/src/trace/job_record.cpp" "src/trace/CMakeFiles/trace.dir/job_record.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/job_record.cpp.o.d"
  "/root/repo/src/trace/report.cpp" "src/trace/CMakeFiles/trace.dir/report.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/report.cpp.o.d"
  "/root/repo/src/trace/swf.cpp" "src/trace/CMakeFiles/trace.dir/swf.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/swf.cpp.o.d"
  "/root/repo/src/trace/transforms.cpp" "src/trace/CMakeFiles/trace.dir/transforms.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
