file(REMOVE_RECURSE
  "CMakeFiles/trace.dir/analysis.cpp.o"
  "CMakeFiles/trace.dir/analysis.cpp.o.d"
  "CMakeFiles/trace.dir/cm5_model.cpp.o"
  "CMakeFiles/trace.dir/cm5_model.cpp.o.d"
  "CMakeFiles/trace.dir/job_record.cpp.o"
  "CMakeFiles/trace.dir/job_record.cpp.o.d"
  "CMakeFiles/trace.dir/report.cpp.o"
  "CMakeFiles/trace.dir/report.cpp.o.d"
  "CMakeFiles/trace.dir/swf.cpp.o"
  "CMakeFiles/trace.dir/swf.cpp.o.d"
  "CMakeFiles/trace.dir/transforms.cpp.o"
  "CMakeFiles/trace.dir/transforms.cpp.o.d"
  "libresmatch_trace.a"
  "libresmatch_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
