file(REMOVE_RECURSE
  "libresmatch_util.a"
)
