file(REMOVE_RECURSE
  "CMakeFiles/util.dir/cli.cpp.o"
  "CMakeFiles/util.dir/cli.cpp.o.d"
  "CMakeFiles/util.dir/csv.cpp.o"
  "CMakeFiles/util.dir/csv.cpp.o.d"
  "CMakeFiles/util.dir/logging.cpp.o"
  "CMakeFiles/util.dir/logging.cpp.o.d"
  "CMakeFiles/util.dir/rng.cpp.o"
  "CMakeFiles/util.dir/rng.cpp.o.d"
  "CMakeFiles/util.dir/strings.cpp.o"
  "CMakeFiles/util.dir/strings.cpp.o.d"
  "CMakeFiles/util.dir/table.cpp.o"
  "CMakeFiles/util.dir/table.cpp.o.d"
  "libresmatch_util.a"
  "libresmatch_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
