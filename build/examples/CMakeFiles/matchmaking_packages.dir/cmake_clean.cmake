file(REMOVE_RECURSE
  "CMakeFiles/matchmaking_packages.dir/matchmaking_packages.cpp.o"
  "CMakeFiles/matchmaking_packages.dir/matchmaking_packages.cpp.o.d"
  "matchmaking_packages"
  "matchmaking_packages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matchmaking_packages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
