# Empty compiler generated dependencies file for matchmaking_packages.
# This may be replaced when dependencies are built.
