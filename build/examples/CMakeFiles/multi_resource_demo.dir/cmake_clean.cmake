file(REMOVE_RECURSE
  "CMakeFiles/multi_resource_demo.dir/multi_resource_demo.cpp.o"
  "CMakeFiles/multi_resource_demo.dir/multi_resource_demo.cpp.o.d"
  "multi_resource_demo"
  "multi_resource_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_resource_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
