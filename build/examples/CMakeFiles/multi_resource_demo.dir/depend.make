# Empty dependencies file for multi_resource_demo.
# This may be replaced when dependencies are built.
