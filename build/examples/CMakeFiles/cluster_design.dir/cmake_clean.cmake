file(REMOVE_RECURSE
  "CMakeFiles/cluster_design.dir/cluster_design.cpp.o"
  "CMakeFiles/cluster_design.dir/cluster_design.cpp.o.d"
  "cluster_design"
  "cluster_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
