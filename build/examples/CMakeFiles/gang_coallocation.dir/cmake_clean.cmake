file(REMOVE_RECURSE
  "CMakeFiles/gang_coallocation.dir/gang_coallocation.cpp.o"
  "CMakeFiles/gang_coallocation.dir/gang_coallocation.cpp.o.d"
  "gang_coallocation"
  "gang_coallocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gang_coallocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
