# Empty compiler generated dependencies file for gang_coallocation.
# This may be replaced when dependencies are built.
