# Empty compiler generated dependencies file for swf_inspect.
# This may be replaced when dependencies are built.
