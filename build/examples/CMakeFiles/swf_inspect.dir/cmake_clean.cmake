file(REMOVE_RECURSE
  "CMakeFiles/swf_inspect.dir/swf_inspect.cpp.o"
  "CMakeFiles/swf_inspect.dir/swf_inspect.cpp.o.d"
  "swf_inspect"
  "swf_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swf_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
