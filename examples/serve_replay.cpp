// serve_replay: prove the online service layer is decision-equivalent to
// the offline simulator.
//
// Replays a CM5-calibrated workload through the discrete-event simulator
// twice — once against the offline successive-approximation estimator,
// once against a live svc::Matchd instance (estimator store, admission
// queue, worker pool) — and diffs the grant streams. Driven serially, the
// two must be byte-identical; this binary exits nonzero if they are not.
//
// Build & run:  ./build/examples/serve_replay [--jobs=N] [--workers=W]
//                                             [--batch-max=B]
//                                             [--metrics-out=PATH]
//                                             [--wal-dir=DIR]
//                                             [--crash-after=N] [--torn-tail]
//                                             [--fault-rate=P] [--fault-seed=S]
//
// --batch-max sets the worker drain batch size (1 = per-op, the
// pre-batching behavior). Driven serially, every batch size must produce
// the same byte-identical decision stream — the determinism gate runs
// this binary across batch sizes to enforce exactly that.
//
// --metrics-out writes a schema-v1 BENCH record (obs/bench_record.hpp)
// carrying the replay verdict plus the observability registry dump: the
// service run's matchd latency histograms and the simulator's engine
// metrics (the offline reference run is deliberately uninstrumented).
//
// --wal-dir enables the write-ahead log on the service run. --crash-after
// switches to the crash-recovery harness (sim::crash_replay): serve N
// jobs, crash, recover a fresh service from the WAL, finish the workload,
// and diff against an uninterrupted fault-free run. --fault-rate arms the
// deterministic injector (seeded by --fault-seed) on every site, with the
// consecutive-failure cap kept below the retry budget so injected faults
// are always recoverable.
#include <cstdio>
#include <string>

#include "obs/bench_record.hpp"
#include "obs/metrics.hpp"
#include "sim/serve_replay.hpp"
#include "trace/cm5_model.hpp"
#include "trace/transforms.hpp"
#include "util/cli.hpp"
#include "util/fault.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;

  util::CliArgs cli(argc, argv);
  const auto jobs = static_cast<std::size_t>(
      cli.get("jobs", static_cast<std::int64_t>(8000)));
  const auto workers = static_cast<std::size_t>(
      cli.get("workers", static_cast<std::int64_t>(1)));
  const auto batch_max = static_cast<std::size_t>(
      cli.get("batch-max", static_cast<std::int64_t>(32)));
  const std::string metrics_out = cli.get("metrics-out", std::string{});
  const std::string wal_dir = cli.get("wal-dir", std::string{});
  const auto crash_after = cli.get("crash-after", static_cast<std::int64_t>(-1));
  const bool torn_tail = cli.get("torn-tail", false);
  const double fault_rate = cli.get("fault-rate", 0.0);
  const auto fault_seed = static_cast<std::uint64_t>(
      cli.get("fault-seed", static_cast<std::int64_t>(42)));

  // Outlives the service and both simulation runs. After serve_replay
  // returns, the service's pull providers are gone (removed by ~Matchd),
  // but its histograms and the simulator's engine series remain.
  obs::Registry registry;

  trace::Workload workload = trace::generate_cm5_small(/*seed=*/1, jobs);
  const sim::ClusterSpec cluster = sim::cm5_heterogeneous(24.0, 64);
  workload = trace::drop_wide_jobs(std::move(workload), 128);
  workload = trace::sort_by_submit(
      trace::scale_to_load(std::move(workload), 128, 1.0));

  util::FaultInjector injector(fault_seed);
  if (fault_rate > 0.0) {
    // Cap consecutive failures below the default retry budget (6 attempts)
    // so every injected fault is recoverable and the run still passes.
    injector.arm_all(util::FaultSpec{fault_rate, /*max_consecutive=*/3});
  }

  sim::ServeReplayConfig config;
  config.matchd.workers = workers;
  config.matchd.batch_max = batch_max;
  config.matchd.durability.wal_dir = wal_dir;
  if (fault_rate > 0.0) config.matchd.durability.faults = &injector;
  if (!metrics_out.empty()) {
    config.matchd.metrics = &registry;
    config.sim.metrics = &registry;
  }

  if (crash_after >= 0) {
    if (wal_dir.empty()) {
      std::fprintf(stderr, "FAIL: --crash-after requires --wal-dir\n");
      return 1;
    }
    sim::CrashReplayConfig crash_config;
    crash_config.matchd = config.matchd;
    crash_config.crash_after = static_cast<std::size_t>(crash_after);
    crash_config.torn_tail = torn_tail;
    const sim::CrashReplayResult crash =
        sim::crash_replay(workload, cluster, crash_config);
    std::printf("jobs replayed:     %zu\n", workload.jobs.size());
    std::printf("crash after:       %lld submissions%s\n",
                static_cast<long long>(crash_after),
                torn_tail ? " (torn tail)" : "");
    std::printf("recovered:         %zu snapshot rows + %llu WAL records "
                "(%llu files, %llu torn)\n",
                crash.recovery.snapshot_rows,
                static_cast<unsigned long long>(crash.recovery.wal_records),
                static_cast<unsigned long long>(crash.recovery.wal_files),
                static_cast<unsigned long long>(crash.recovery.torn_files));
    std::printf("decisions:         %zu\n", crash.decisions);
    std::printf("mismatches:        %zu\n", crash.mismatches);
    if (!crash.identical()) {
      std::fprintf(stderr,
                   "FAIL: recovered service diverged from fault-free run\n");
      for (const auto& d : crash.first_mismatches) {
        std::fprintf(stderr, "  job %llu: fault-free=%.6f recovered=%.6f\n",
                     static_cast<unsigned long long>(d.job_id),
                     d.offline_mib, d.service_mib);
      }
      return 1;
    }
    std::printf("\nOK: crash+recovery invisible in the decision stream\n");
    return 0;
  }

  const sim::ServeReplayResult result =
      sim::serve_replay(workload, cluster, config);

  std::printf("jobs replayed:     %zu\n", workload.jobs.size());
  std::printf("decisions:         %zu\n", result.decisions);
  std::printf("mismatches:        %zu\n", result.mismatches);
  std::printf("                   %-12s %-12s\n", "offline", "service");
  std::printf("utilization        %-12.6f %-12.6f\n",
              result.offline.utilization, result.service.utilization);
  std::printf("mean slowdown      %-12.4f %-12.4f\n",
              result.offline.mean_slowdown, result.service.mean_slowdown);
  std::printf("service groups:    %zu  (workers=%zu, async accepted=%llu)\n",
              result.stats.groups, workers,
              static_cast<unsigned long long>(result.stats.async_accepted));

  if (!metrics_out.empty()) {
    obs::BenchRecord record("serve_replay");
    record.config("jobs", static_cast<std::int64_t>(jobs));
    record.config("workers", static_cast<std::int64_t>(workers));
    record.config("batch_max", static_cast<std::int64_t>(batch_max));
    record.summary("decisions", static_cast<double>(result.decisions));
    record.summary("mismatches", static_cast<double>(result.mismatches));
    record.summary("utilization_offline", result.offline.utilization);
    record.summary("utilization_service", result.service.utilization);
    record.summary("submissions",
                   static_cast<double>(result.stats.submissions));
    record.summary("rewrites", static_cast<double>(result.stats.rewrites));
    record.summary("async_accepted",
                   static_cast<double>(result.stats.async_accepted));
    record.metrics(registry.snapshot());
    if (!record.write(metrics_out)) {
      std::fprintf(stderr, "FAIL: could not write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_out.c_str());
  }

  if (!result.identical()) {
    std::fprintf(stderr, "FAIL: service diverged from offline simulator\n");
    for (const auto& d : result.first_mismatches) {
      std::fprintf(stderr, "  job %llu: offline=%.6f service=%.6f\n",
                   static_cast<unsigned long long>(d.job_id), d.offline_mib,
                   d.service_mib);
    }
    return 1;
  }
  std::printf("\nOK: service decisions identical to offline simulator\n");
  return 0;
}
