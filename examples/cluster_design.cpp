// Cluster design: the paper's §3.2 "advantageous outcome".
//
// "Given the distribution of requested and actual resource capacities,
// possibly derived from a scheduler log, and a resource estimation
// algorithm, it is possible to design a cluster ... to maximize the number
// of jobs for which estimation is advantageous."
//
// This example takes a workload, fixes half the machines at 32 MiB, and
// searches the second pool's memory size for the best achieved utilization
// under estimation — i.e., it uses the simulator as a cluster-procurement
// tool, exactly the workflow the paper sketches.
#include <cstdio>

#include "util/strings.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "util/table.hpp"

int main() {
  using namespace resmatch;

  // Workload derived "from a scheduler log": here the calibrated CM5
  // model; swap in trace::read_swf_file() for a real log.
  trace::Workload workload = trace::generate_cm5_small(/*seed=*/3, 10000);
  workload = trace::drop_wide_jobs(std::move(workload), 128);

  exp::RunSpec spec;  // the paper's estimator and policy
  const std::vector<MiB> candidates = {8, 12, 16, 20, 24, 28, 32};
  const auto result =
      exp::cluster_sweep(workload, candidates, /*load=*/1.0, spec,
                         /*pool_size=*/64);
  exp::report_sweep_errors("candidate pool", result.errors);
  const auto& sweep = result.points;

  util::ConsoleTable table({"2nd pool MiB", "util (est)", "util (none)",
                            "gain", "benefiting nodes"});
  double best_util = 0.0;
  MiB best_mib = 0.0;
  for (const auto& point : sweep) {
    table.add_row(
        {util::format("%g", point.second_pool_mib),
         util::format("%.3f", point.with_estimation.utilization),
         util::format("%.3f", point.without_estimation.utilization),
         util::format("%.3f", exp::ratio_or_nan(point.utilization_ratio())),
         util::format("%zu", point.with_estimation.benefiting_nodes)});
    if (point.with_estimation.utilization > best_util) {
      best_util = point.with_estimation.utilization;
      best_mib = point.second_pool_mib;
    }
  }
  table.print();

  std::printf(
      "\nRecommended second-pool memory for this workload: %g MiB\n"
      "(highest achieved utilization %.3f under estimation).\n\n"
      "Note the paper's two no-gain regions: pools too small for the\n"
      "alpha=2 descent to reach, and the homogeneous 32 MiB cluster.\n",
      best_mib, best_util);
  return 0;
}
