// Multi-resource estimation (paper §2.3, closing discussion).
//
// Algorithm 1 handles one resource; estimating several at once makes
// failure attribution ambiguous ("it would be difficult to know which of
// these resources causes the algorithm to terminate"). The library's
// MultiResourceEstimator resolves that by probing a single coordinate per
// cycle, round-robin — this demo shows it converging on a job class that
// over-requests memory 4x, disk 8x, and licenses 2x simultaneously.
#include <cstdio>
#include <string>
#include <vector>

#include "util/strings.hpp"
#include "core/multi_resource.hpp"
#include "util/table.hpp"

int main() {
  using namespace resmatch;

  const std::vector<std::string> names = {"memory MiB", "disk GiB",
                                          "licenses"};
  const std::vector<double> requested = {32.0, 80.0, 8.0};
  const std::vector<double> actual = {8.0, 10.0, 4.0};

  core::MultiResourceEstimator estimator(names.size(), {/*alpha=*/2.0,
                                                        /*beta=*/0.0});
  const GroupId group = 1;

  util::ConsoleTable table({"cycle", "memory MiB", "disk GiB", "licenses",
                            "outcome"});
  for (int cycle = 1; cycle <= 18; ++cycle) {
    const auto estimate = estimator.estimate(group, requested);
    // Implicit feedback: the run succeeds iff every coordinate covers the
    // actual need.
    bool success = true;
    for (std::size_t i = 0; i < actual.size(); ++i) {
      if (estimate[i] + 1e-9 < actual[i]) success = false;
    }
    estimator.feedback(group, success);
    table.add_row({util::format("%d", cycle),
                   util::format("%g", estimate[0]),
                   util::format("%g", estimate[1]),
                   util::format("%g", estimate[2]),
                   success ? "success" : "failure (probed coordinate blamed)"});
  }
  table.print();

  const auto final_estimate = estimator.last_good(group);
  std::printf("\nconverged allocation vs request vs actual:\n");
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("  %-11s granted %-7g requested %-7g actual %g\n",
                names[i].c_str(), (*final_estimate)[i], requested[i],
                actual[i]);
  }
  std::printf(
      "\nEach failure blamed exactly one coordinate (the probed one), so\n"
      "the other resources kept converging — the paper's ambiguity problem\n"
      "solved by serializing the probes.\n");
  return 0;
}
