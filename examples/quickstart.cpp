// Quickstart: the five-minute tour of the resmatch public API.
//
//   1. Generate (or load) a workload trace.
//   2. Describe a heterogeneous cluster.
//   3. Pick an estimator and a scheduling policy.
//   4. Simulate, with and without estimation.
//   5. Compare utilization and slowdown.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/factory.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/cm5_model.hpp"
#include "trace/transforms.hpp"

int main() {
  using namespace resmatch;

  // 1. A synthetic workload calibrated to the LANL CM5 statistics; 8,000
  //    jobs keeps this demo instant. Real SWF traces load via
  //    trace::read_swf_file().
  trace::Workload workload = trace::generate_cm5_small(/*seed=*/1, 8000);

  // 2. The paper's cluster, scaled down: 64 machines with 32 MiB per node
  //    plus 64 machines with 24 MiB. Jobs in the small trace span
  //    4..512 nodes; drop the ones wider than this demo cluster.
  const sim::ClusterSpec cluster = sim::cm5_heterogeneous(24.0, 64);
  workload = trace::drop_wide_jobs(std::move(workload), 128);

  // 3. Rescale arrivals so the cluster is offered just past saturation —
  //    the regime where over-provisioning hurts most.
  workload = trace::sort_by_submit(
      trace::scale_to_load(std::move(workload), 128, 1.0));

  // 4. Simulate with the paper's estimator (Algorithm 1: successive
  //    approximation, alpha = 2, beta = 0) and without.
  auto estimator = core::make_estimator("successive-approximation");
  auto baseline = core::make_estimator("none");
  auto policy = sched::make_policy("fcfs");

  const sim::SimulationResult with_est =
      sim::simulate(workload, cluster, *estimator, *policy);
  const sim::SimulationResult without =
      sim::simulate(workload, cluster, *baseline, *policy);

  // 5. Report.
  std::printf("jobs simulated:        %zu\n", workload.jobs.size());
  std::printf("                       %-12s %-12s\n", "with est.", "without");
  std::printf("utilization            %-12.3f %-12.3f\n",
              with_est.utilization, without.utilization);
  std::printf("mean slowdown          %-12.2f %-12.2f\n",
              with_est.mean_slowdown, without.mean_slowdown);
  std::printf("mean wait (s)          %-12.0f %-12.0f\n", with_est.mean_wait,
              without.mean_wait);
  std::printf("\njobs granted less than requested: %.1f%%\n",
              100.0 * with_est.lowered_fraction());
  std::printf("executions failed by under-estimation: %.3f%%\n",
              100.0 * with_est.resource_failure_fraction());
  std::printf("\nutilization improvement: %+.1f%%\n",
              100.0 * (with_est.utilization / without.utilization - 1.0));
  return 0;
}
