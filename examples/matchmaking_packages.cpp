// Matchmaking with prerequisite-package estimation.
//
// The paper (§1.3) notes that over-provisioning extends beyond memory to
// "software packages that are defined as prerequisites" — a job may list
// packages it never uses, shrinking the set of machines it can match.
//
// This example wires two substrates together:
//   * match::ClassAd — declarative job/machine matchmaking (Condor-style),
//   * core::PrerequisiteEstimator — learns, from implicit feedback, which
//     listed prerequisites a job group actually needs.
// As the estimator proves packages droppable, the job's requirements
// expression relaxes and more machines qualify.
#include <cstdio>
#include <string>
#include <vector>

#include "util/strings.hpp"
#include "core/prereq_estimator.hpp"
#include "match/classad.hpp"
#include "util/table.hpp"

namespace {

using namespace resmatch;

/// Build a job ad requiring the given subset of packages.
match::ClassAd make_job_ad(const std::vector<std::string>& packages,
                           const std::vector<bool>& required) {
  match::ClassAd job;
  std::string requirements = "other.memory >= 16";
  for (std::size_t i = 0; i < packages.size(); ++i) {
    if (required[i]) {
      requirements += " && other.has_" + packages[i] + " == true";
    }
  }
  job.set("req_memory", 16.0);
  job.set_expr("requirements", requirements);
  // Prefer the least-equipped machine that qualifies: this keeps richly
  // stocked machines free for jobs that need them AND makes the
  // estimator's probe honest — dropping a package sends the job to a
  // machine that really lacks it, so implicit feedback tells the truth.
  job.set_expr("rank", "0 - other.package_count");
  return job;
}

}  // namespace

int main() {
  using namespace resmatch;

  const std::vector<std::string> packages = {"blas", "fftw", "hdf5"};
  // Ground truth: the job's code only ever touches BLAS.
  const std::vector<bool> truly_needed = {true, false, false};

  // A 6-machine zoo with different package sets.
  std::vector<match::ClassAd> machines(6);
  const bool installed[6][3] = {
      {true, true, true},    // full stack
      {true, true, false},   //
      {true, false, false},  // BLAS only
      {true, false, true},   //
      {false, true, true},   // no BLAS
      {false, false, false}, // bare
  };
  for (std::size_t m = 0; m < machines.size(); ++m) {
    machines[m].set("memory", 32.0);
    int count = 0;
    for (std::size_t p = 0; p < packages.size(); ++p) {
      machines[m].set("has_" + packages[p], installed[m][p]);
      count += installed[m][p] ? 1 : 0;
    }
    machines[m].set("package_count", static_cast<double>(count));
  }

  core::PrerequisiteEstimator estimator;
  const GroupId group = 1;  // all submissions of this job form one group

  util::ConsoleTable table(
      {"cycle", "required packages", "matching machines", "outcome"});
  for (int cycle = 1; cycle <= 8; ++cycle) {
    const std::vector<bool> required = estimator.estimate(group, packages.size());
    const match::ClassAd job = make_job_ad(packages, required);
    const auto matches = match::rank_matches(job, machines);

    // "Run" the job on the best match: it succeeds iff every truly needed
    // package is present there (implicit feedback — just success/failure).
    bool success = false;
    if (!matches.empty()) {
      const auto& host = machines[matches.front()];
      success = true;
      for (std::size_t p = 0; p < packages.size(); ++p) {
        if (truly_needed[p] &&
            !(host.evaluate("has_" + packages[p]).is_bool() &&
              host.evaluate("has_" + packages[p]).as_bool())) {
          success = false;
        }
      }
    }
    estimator.feedback(group, success);

    std::string req_list;
    for (std::size_t p = 0; p < packages.size(); ++p) {
      if (required[p]) req_list += (req_list.empty() ? "" : ", ") + packages[p];
    }
    table.add_row({util::format("%d", cycle),
                   req_list.empty() ? "(none)" : req_list,
                   util::format("%zu / %zu", matches.size(), machines.size()),
                   success ? "success" : "failure"});
  }
  table.print();

  std::printf("\npackages proven droppable: %zu of %zu\n",
              estimator.droppable_count(group), packages.size());
  std::printf(
      "With the learned prerequisite set the job matches more machines\n"
      "than its original over-specified request allowed.\n");
  return 0;
}
