// swf_inspect: characterize a workload trace before simulating it.
//
// Reads a Standard Workload Format file (or generates the calibrated
// synthetic CM5 trace when no file is given) and prints the profile a
// capacity planner wants before trusting any simulation: population,
// demand, over-provisioning structure, and similarity-group quality —
// i.e., whether the paper's estimation approach has anything to work with
// on THIS trace.
//
// Usage:
//   swf_inspect                          # synthetic CM5, full scale
//   swf_inspect --file=mylog.swf         # a real SWF trace
//   swf_inspect --jobs=5000 --seed=9     # reduced synthetic
#include <cstdio>

#include "trace/analysis.hpp"
#include "trace/cm5_model.hpp"
#include "trace/report.hpp"
#include "trace/swf.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace resmatch;
  try {
    util::CliArgs cli(argc, argv);
    const std::string file = cli.get("file", std::string{});
    const auto jobs =
        static_cast<std::size_t>(cli.get("jobs", std::int64_t{0}));
    const auto seed =
        static_cast<std::uint64_t>(cli.get("seed", std::int64_t{42}));

    trace::Workload workload;
    if (!file.empty()) {
      auto result = trace::read_swf_file(file);
      if (!result) {
        std::fprintf(stderr, "error: %s\n", result.error().c_str());
        return 1;
      }
      workload = std::move(result).value().workload;
      std::printf("loaded %zu jobs from %s (%zu lines skipped)\n\n",
                  workload.jobs.size(), file.c_str(),
                  result.value().skipped);
    } else if (jobs != 0) {
      workload = trace::generate_cm5_small(seed, jobs);
    } else {
      trace::Cm5ModelConfig cfg;
      cfg.seed = seed;
      workload = trace::generate_cm5(cfg);
    }

    const auto profile = trace::profile_workload(workload);
    std::fputs(trace::render_profile(profile, workload.name).c_str(), stdout);

    // The estimation-readiness verdict, in the paper's terms.
    std::printf("\nEstimation readiness:\n");
    const bool overprovisioned = profile.overprovision_ge2_fraction > 0.1;
    const bool grouped = profile.large_group_job_coverage > 0.5;
    std::printf("  %-55s %s\n",
                "significant over-provisioning (>10% of jobs at 2x)",
                overprovisioned ? "yes" : "no");
    std::printf("  %-55s %s\n",
                "similarity groups cover most jobs (>50% in big groups)",
                grouped ? "yes" : "no");
    if (overprovisioned && grouped) {
      std::printf(
          "  => good candidate: resource estimation should reclaim capacity\n");
    } else {
      std::printf(
          "  => weak candidate: estimation will have little to exploit\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
