// Elastic cluster: estimation under machine churn.
//
// The paper's opening sentence about heterogeneous clusters and grids:
// "machines can dynamically join and leave the systems at any time"
// (§1.1). This example runs the Figure 5 scenario on a cluster whose
// 24 MiB pool is withdrawn for the middle third of the trace — a
// maintenance window — and shows three things:
//   * accounting stays honest (utilization is measured against the
//     time-integrated machine count, not a fixed denominator);
//   * busy machines drain gracefully rather than killing jobs;
//   * the estimator's advantage survives the churn, because similarity
//     groups keep their learned capacities across the outage.
#include <cstdio>

#include "core/factory.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/cm5_model.hpp"
#include "trace/transforms.hpp"

int main() {
  using namespace resmatch;

  trace::Workload workload = trace::generate_cm5_small(/*seed=*/8, 10000);
  workload = trace::drop_wide_jobs(std::move(workload), 128);
  workload = trace::sort_by_submit(
      trace::scale_to_load(std::move(workload), 128, 0.9));

  const Seconds third = workload.span() / 3.0;
  const std::vector<sim::AvailabilityEvent> maintenance = {
      {third, 24.0, -64},       // the whole 24 MiB pool leaves
      {2.0 * third, 24.0, 64},  // and returns an epoch later
  };

  auto run = [&](const std::string& estimator) {
    auto est = core::make_estimator(estimator);
    auto pol = sched::make_policy("fcfs");
    sim::SimulationConfig cfg;
    cfg.availability = maintenance;
    return sim::simulate(workload, sim::cm5_heterogeneous(24.0, 64), *est,
                         *pol, cfg);
  };

  const auto with_est = run("successive-approximation");
  const auto without = run("none");

  std::printf("maintenance window: 24 MiB pool offline for the middle third\n\n");
  std::printf("                          %-12s %-12s\n", "with est.",
              "without");
  std::printf("utilization (vs real capacity) %-8.3f %-8.3f\n",
              with_est.utilization, without.utilization);
  std::printf("mean slowdown             %-12.2f %-12.2f\n",
              with_est.mean_slowdown, without.mean_slowdown);
  std::printf("completed                 %-12zu %-12zu\n", with_est.completed,
              without.completed);
  std::printf("stranded/unschedulable    %-12zu %-12zu\n",
              with_est.dropped_unschedulable, without.dropped_unschedulable);
  std::printf("\nutilization advantage of estimation: %+.1f%%\n",
              100.0 * (with_est.utilization / without.utilization - 1.0));
  std::printf(
      "\nDuring the outage every job must fit a 32 MiB machine either way;\n"
      "the estimator's groups retain their learned capacities, so its\n"
      "advantage resumes the moment the small pool returns.\n");
  return 0;
}
