// Gang co-allocation: one-to-many matching with aggregate constraints.
//
// The paper's related work (§1.2) covers resource-selection frameworks
// that co-match one job with MULTIPLE resources under global constraints
// (Liu et al.) and Condor's gangmatching (Raman et al.). This example
// co-allocates a three-role pipeline job — a coordinator, two workers,
// and a license-holding visualizer — across a small machine zoo, with two
// aggregate constraints: total memory across the gang, and all machines
// in the same grid domain.
#include <cstdio>

#include "match/gangmatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace resmatch;

  // The machine zoo: two grid domains with mixed capability.
  struct MachineSpec {
    const char* name;
    double memory;
    const char* domain;
    bool viz_license;
  };
  const MachineSpec specs[] = {
      {"east-big", 64, "east", false},  {"east-mid", 32, "east", true},
      {"east-sml", 16, "east", false},  {"west-big", 64, "west", true},
      {"west-mid", 32, "west", false},  {"west-sm1", 16, "west", false},
      {"west-sm2", 16, "west", false},  {"west-tin", 8, "west", false},
  };
  std::vector<match::ClassAd> machines;
  for (const auto& spec : specs) {
    match::ClassAd ad;
    ad.set("name", spec.name);
    ad.set("memory", spec.memory);
    ad.set("domain", spec.domain);
    ad.set("viz_license", spec.viz_license);
    machines.push_back(std::move(ad));
  }

  // The gang: coordinator (32 MiB), two workers (16 MiB), visualizer
  // (needs the license). Everyone prefers the smallest adequate machine.
  auto member = [](double req_memory, bool needs_license) {
    match::ClassAd ad;
    ad.set("req_memory", req_memory);
    ad.set("needs_license", needs_license);
    ad.set_expr("requirements",
                "other.memory >= my.req_memory && "
                "(!my.needs_license || other.viz_license == true)");
    ad.set_expr("rank", "0 - other.memory");
    return ad;
  };
  const std::vector<match::ClassAd> gang = {
      member(32, false),  // coordinator
      member(16, false),  // worker 1
      member(16, false),  // worker 2
      member(16, true),   // visualizer
  };
  const char* roles[] = {"coordinator", "worker-1", "worker-2", "visualizer"};

  match::GangMatchOptions options;
  options.aggregate = [&](const std::vector<std::size_t>& assignment) {
    return match::all_equal(machines, "domain")(assignment) &&
           match::total_at_least(machines, "memory", 120.0)(assignment);
  };

  const auto result = match::gang_match(gang, machines, options);
  if (!result.matched) {
    std::printf("no co-allocation satisfies the gang (steps: %zu)\n",
                result.steps);
    return 1;
  }

  util::ConsoleTable table({"role", "machine", "memory", "domain"});
  for (std::size_t i = 0; i < result.assignment.size(); ++i) {
    const auto& m = machines[result.assignment[i]];
    table.add_row({roles[i], m.evaluate("name").as_string(),
                   util::format("%.0f MiB", m.evaluate("memory").as_number()),
                   m.evaluate("domain").as_string()});
  }
  table.print();
  std::printf(
      "\nsearch steps: %zu (exact backtracking; greedy smallest-fit picks\n"
      "were revised wherever the same-domain and >=120 MiB totals forced\n"
      "bigger machines)\n",
      result.steps);
  return 0;
}
