// cluster_replay: prove the multi-node tier is decision-equivalent to a
// single-process matchd.
//
// The harness forks N shard processes — each a svc::Matchd with its own
// per-shard WAL behind a net::Server on a Unix-domain socket — then drives
// a CM5-calibrated workload through a net::Router in the parent and diffs
// the grant stream against an uninterrupted single-process replay. Groups
// are disjoint across shards (the router hashes the similarity key), so
// the two streams must be byte-identical; this binary exits nonzero if
// they are not.
//
//   ./build/examples/cluster_replay [--jobs=N] [--shards=S]
//                                   [--kill-after=K] [--workers=W]
//                                   [--batch-max=B] [--dir=PATH]
//
// --kill-after=K SIGKILLs one shard after K jobs (the shard the next job
// routes to — the worst case), immediately restarts it, and lets it
// recover from its WAL while the router rides out the gap with
// reconnect+backoff. The decision stream must STILL be byte-identical:
// write-through WAL durability (PR 5) means a SIGKILL loses nothing, and
// the restarted shard resumes every group trajectory exactly where it
// died. This is the networked version of serve_replay's --crash-after.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "net/router.hpp"
#include "net/server.hpp"
#include "sim/cluster.hpp"
#include "svc/matchd.hpp"
#include "trace/cm5_model.hpp"
#include "trace/transforms.hpp"
#include "util/cli.hpp"

namespace {

namespace fs = std::filesystem;
using namespace resmatch;

struct ShardSpec {
  std::string sock;
  std::string wal_dir;
};

/// Child body: serve one matchd shard on a UDS until killed. Never
/// returns to the caller's stack — _exit on any failure.
[[noreturn]] void run_shard(const ShardSpec& spec,
                            const core::CapacityLadder& ladder,
                            std::size_t workers, std::size_t batch_max) {
  svc::MatchdConfig config;
  config.workers = workers;
  config.batch_max = batch_max;
  config.durability.wal_dir = spec.wal_dir;
  svc::Matchd matchd(config);
  matchd.set_ladder(ladder);
  auto recovered = matchd.recover();
  if (!recovered) {
    std::fprintf(stderr, "shard %s: recovery failed: %s\n",
                 spec.sock.c_str(), recovered.error().c_str());
    std::_Exit(1);
  }
  net::ServerConfig server_config;
  server_config.uds_path = spec.sock;
  net::Server server(matchd, server_config);
  server.run();  // blocks until the process is killed
  std::_Exit(0);
}

pid_t spawn_shard(const ShardSpec& spec, const core::CapacityLadder& ladder,
                  std::size_t workers, std::size_t batch_max) {
  const pid_t pid = ::fork();
  if (pid == 0) run_shard(spec, ladder, workers, batch_max);
  return pid;
}

MiB drive_job(auto& service, const trace::JobRecord& job) {
  const svc::MatchDecision decision = service.submit(job);
  core::Feedback fb;
  fb.granted_mib = decision.granted_mib;
  fb.success = job.used_mem_mib <= decision.granted_mib;
  fb.used_mib = job.used_mem_mib;
  fb.resource_failure = !fb.success;
  service.feedback(job, fb);
  return decision.granted_mib;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs cli(argc, argv);
  const auto jobs_n = static_cast<std::size_t>(
      cli.get("jobs", static_cast<std::int64_t>(2000)));
  const auto shards_n = static_cast<std::size_t>(
      cli.get("shards", static_cast<std::int64_t>(3)));
  const auto kill_after = cli.get("kill-after", static_cast<std::int64_t>(-1));
  const auto workers = static_cast<std::size_t>(
      cli.get("workers", static_cast<std::int64_t>(0)));
  const auto batch_max = static_cast<std::size_t>(
      cli.get("batch-max", static_cast<std::int64_t>(32)));
  std::string dir = cli.get("dir", std::string{});

  if (dir.empty()) {
    char tmpl[] = "/tmp/resmatch_cluster_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "FAIL: mkdtemp failed\n");
      return 1;
    }
    dir = tmpl;
  } else {
    fs::create_directories(dir);
  }

  // The paper's reduced-scale fixture, exactly as serve_replay builds it.
  trace::Workload workload = trace::generate_cm5_small(/*seed=*/1, jobs_n);
  const sim::ClusterSpec cluster = sim::cm5_heterogeneous(24.0, 64);
  workload = trace::drop_wide_jobs(std::move(workload), 128);
  workload = trace::sort_by_submit(
      trace::scale_to_load(std::move(workload), 128, 1.0));
  const core::CapacityLadder ladder = sim::Cluster(cluster).ladder();

  // Reference: one uninterrupted single-process matchd, driven serially.
  std::vector<MiB> expected;
  expected.reserve(workload.jobs.size());
  {
    svc::Matchd reference;
    reference.set_ladder(ladder);
    for (const auto& job : workload.jobs) {
      expected.push_back(drive_job(reference, job));
    }
  }  // destroyed before fork(): the parent must stay thread-free

  std::vector<ShardSpec> specs;
  std::vector<pid_t> pids;
  for (std::size_t s = 0; s < shards_n; ++s) {
    ShardSpec spec;
    spec.sock = dir + "/shard" + std::to_string(s) + ".sock";
    spec.wal_dir = dir + "/wal" + std::to_string(s);
    fs::create_directories(spec.wal_dir);
    specs.push_back(spec);
    pids.push_back(spawn_shard(spec, ladder, workers, batch_max));
    if (pids.back() < 0) {
      std::fprintf(stderr, "FAIL: fork failed for shard %zu\n", s);
      return 1;
    }
  }

  net::RouterConfig router_config;
  for (const auto& spec : specs) {
    net::ShardEndpoint ep;
    ep.uds_path = spec.sock;
    router_config.shards.push_back(ep);
  }
  router_config.ladder = ladder;
  // The retry budget must ride out a shard restart: recover + rebind is
  // tens of milliseconds, so ~60 attempts with a 50 ms cap gives seconds.
  router_config.retry.max_attempts = 60;
  router_config.retry.initial_backoff = std::chrono::microseconds(500);
  router_config.retry.max_backoff = std::chrono::microseconds(50'000);
  net::Router router(router_config);

  // The children are racing us to bind; retry until every shard answers.
  bool connected = false;
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (router.connect().has_value()) {
      connected = true;
      break;
    }
    ::usleep(20'000);
  }
  if (!connected) {
    std::fprintf(stderr, "FAIL: shards never became reachable\n");
    return 1;
  }

  std::size_t mismatches = 0;
  std::size_t printed = 0;
  std::size_t killed_shard = shards_n;  // sentinel: none
  for (std::size_t i = 0; i < workload.jobs.size(); ++i) {
    if (kill_after >= 0 && i == static_cast<std::size_t>(kill_after) &&
        i + 1 < workload.jobs.size()) {
      // Kill the shard the NEXT job routes to — the router must then
      // retry straight into the WAL-recovery window.
      killed_shard = router.shard_of(workload.jobs[i + 1]);
      std::printf("killing shard %zu (pid %d) after %zu jobs...\n",
                  killed_shard, static_cast<int>(pids[killed_shard]), i);
      ::kill(pids[killed_shard], SIGKILL);
      ::waitpid(pids[killed_shard], nullptr, 0);
      pids[killed_shard] =
          spawn_shard(specs[killed_shard], ladder, workers, batch_max);
      if (pids[killed_shard] < 0) {
        std::fprintf(stderr, "FAIL: refork failed\n");
        return 1;
      }
    }
    const MiB granted = drive_job(router, workload.jobs[i]);
    if (granted != expected[i]) {
      ++mismatches;
      if (printed < 5) {
        std::fprintf(stderr,
                     "  job %llu: single-process=%.6f cluster=%.6f\n",
                     static_cast<unsigned long long>(workload.jobs[i].id),
                     expected[i], granted);
        ++printed;
      }
    }
  }

  const net::StatsResp totals = router.aggregate_stats();
  const net::RouterStats rstats = router.stats();
  std::printf("jobs replayed:     %zu across %zu shards\n",
              workload.jobs.size(), shards_n);
  std::printf("cluster totals:    %llu submissions, %llu groups, "
              "%llu WAL appends\n",
              static_cast<unsigned long long>(totals.submissions),
              static_cast<unsigned long long>(totals.groups),
              static_cast<unsigned long long>(totals.wal_appends));
  std::printf("router:            %llu requests, %llu retries, "
              "%llu reconnects, %llu degraded ops\n",
              static_cast<unsigned long long>(rstats.requests),
              static_cast<unsigned long long>(rstats.retries),
              static_cast<unsigned long long>(rstats.reconnects),
              static_cast<unsigned long long>(rstats.degraded_ops));
  std::printf("mismatches:        %zu\n", mismatches);

  for (const pid_t pid : pids) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
  }
  fs::remove_all(dir);

  if (killed_shard < shards_n && rstats.reconnects <= shards_n) {
    // The kill must actually have been felt: at least one reconnect
    // beyond the initial dials, or the test proved nothing.
    std::fprintf(stderr, "FAIL: kill/restart never forced a reconnect\n");
    return 1;
  }
  if (rstats.degraded_ops > 0) {
    std::fprintf(stderr,
                 "FAIL: %llu operations served degraded (pass-through) — "
                 "equivalence was not exercised end to end\n",
                 static_cast<unsigned long long>(rstats.degraded_ops));
    return 1;
  }
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: cluster diverged from single-process replay\n");
    return 1;
  }
  std::printf("\nOK: cluster decisions identical to single-process replay%s\n",
              killed_shard < shards_n ? " (across shard kill+restart)" : "");
  return 0;
}
